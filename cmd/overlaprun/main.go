// Command overlaprun executes a named model's layer step for real on
// the concurrent goroutine runtime — one goroutine per device, channel
// links, asynchronous CollectivePermutes — and prints a compute /
// communication / exposed-stall breakdown measured from wall-clock
// timestamps rather than the discrete-event simulator's predictions.
//
// The Table 1/2 models are far too large to execute with real tensors,
// so the named configuration is scaled down to a miniature with the
// same architecture, partitioning strategy, and collective structure:
// one layer on a 1×N ring, with dimensions shrunk proportionally to the
// device count. Injected wire delays (see -timescale) keep the
// compute-to-communication ratio meaningful at that scale.
//
// Usage:
//
//	overlaprun -model GPT_32B -devices 4                # all three modes
//	overlaprun -model GLaM_1T -devices 4 -mode overlap  # one mode
//	overlaprun -plan-in plan.json                       # execute a compiled plan, zero compilation
//	overlaprun -model GPT_32B -trace run.json           # Perfetto trace
//	overlaprun -model GPT_32B -attrib                   # per-collective overlap attribution
//	overlaprun -metrics-out run.prom                    # telemetry export (Prometheus text)
//	overlaprun -serve :9090                             # live /metrics endpoint
//	overlaprun -fault drop:link:0-1 -deadline 2s        # chaos: inject a fault, bound the stall
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"overlap"
	"overlap/internal/core"
	"overlap/internal/models"
	"overlap/internal/tensor"
)

// transportKind is the fabric transport every run in this process uses,
// resolved once from -transport in main.
var transportKind overlap.TransportKind

func main() {
	// A proc-transport run re-executes this binary as its workers; the
	// worker hook must run before any flag or model work.
	overlap.MaybeTransportWorker()

	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2")
	devices := flag.Int("devices", 4, "ring size (goroutine devices)")
	dim := flag.Int("dim", 8, "miniature per-head dimension (scales every tensor)")
	mode := flag.String("mode", "all", "baseline, rolled, overlap, or all")
	timeScale := flag.Float64("timescale", 2000, "wire-delay scale: modeled seconds sleep this many times longer")
	traceFile := flag.String("trace", "", "write the overlap mode's Chrome trace to this file")
	traceOut := flag.String("trace-out", "", "write the overlap mode's run-scoped trace artifact (RunTrace JSON: spans with attribution verdicts, readable by traceviz -trace-in) to this file")
	check := flag.Bool("check", false, "cross-check runtime outputs against the lockstep interpreter")
	attrib := flag.Bool("attrib", false, "print the per-collective overlap attribution of each mode")
	metricsOut := flag.String("metrics-out", "", "export telemetry to this file (Prometheus text, or JSON with a .json suffix)")
	serveAddr := flag.String("serve", "", "serve a live /metrics endpoint at this address and stay up after the run")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); results are byte-identical for any value")
	kernelSplitK := flag.Int("kernel-splitk", 0, "split-K factor for skinny einsum kernels (0 = off); factors >= 2 reassociate the contraction deterministically")
	faultSpec := flag.String("fault", "", "inject faults, comma-separated: crash:dev:D[:K], drop:link:S-D[:K], dup:link:S-D[:K], delay:link:S-D:DUR[:JITTER]")
	faultSeed := flag.Int64("fault-seed", 0, "seed for fault-injection jitter (deterministic per seed)")
	deadline := flag.Duration("deadline", 0, "abort a run that exceeds this wall-clock with a structured error (0 = no deadline)")
	planIn := flag.String("plan-in", "", "execute a compiled Plan artifact (from overlaptune -plan-out or the daemon's /v1/compile) instead of building a model; zero compilation")
	transport := flag.String("transport", "chan", "fabric transport: chan (in-process channels) or proc (one worker process per device over Unix sockets)")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)
	overlap.SetKernelSplitK(*kernelSplitK)

	tk, err := overlap.ParseTransport(*transport)
	if err != nil {
		fail(err)
	}
	transportKind = tk

	faults, err := overlap.ParseFaults(*faultSpec)
	if err != nil {
		fail(err)
	}
	if faults != nil {
		faults.Seed = *faultSeed
		fmt.Printf("injecting faults: %s (seed %d)\n", faults, *faultSeed)
	}

	if *serveAddr != "" {
		_, addr, err := overlap.ServeMetrics(*serveAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving telemetry at http://%s/metrics\n", addr)
	}

	var runErr error
	if *planIn != "" {
		runErr = runPlan(*planIn, *timeScale, *traceFile, *traceOut, *check, *attrib, faults, *deadline)
	} else {
		cfg, err := models.ByName(*model)
		if err != nil {
			fail(err)
		}
		mini, err := models.Miniature(cfg, *devices, *dim)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s miniature: %d devices, model dim %d, ff dim %d, %d tokens\n",
			mini.Name, *devices, mini.ModelDim, mini.FFDim, mini.Tokens())

		modes := []string{"baseline", "rolled", "overlap"}
		if *mode != "all" {
			modes = []string{*mode}
		}
		for _, m := range modes {
			if err := runMode(mini, m, *devices, *timeScale, *traceFile, *traceOut, *check, *attrib, faults, *deadline); err != nil {
				runErr = err
				break
			}
		}
	}

	// Telemetry is written even when a run failed: the fault/abort
	// counters of a chaos run are exactly what the caller wants to see.
	if *metricsOut != "" {
		if err := overlap.Metrics().WriteFile(*metricsOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote telemetry to %s\n", *metricsOut)
	}
	if runErr != nil {
		fail(runErr)
	}
	if *serveAddr != "" {
		fmt.Println("runs done; serving /metrics until interrupted")
		select {}
	}
}

// runPlan loads a compiled Plan artifact and executes it directly: no
// model build, no pipeline Apply, no tuning — the round-trip proof that
// the serialized artifact is self-contained.
func runPlan(path string, timeScale float64, traceFile, traceOut string, check, attrib bool, faults *overlap.FaultPlan, deadline time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plan, err := overlap.DecodePlan(data)
	if err != nil {
		return err
	}
	c, err := plan.Computation()
	if err != nil {
		return err
	}
	fmt.Printf("plan %s: %d devices, winner %s (compiled %s)\n",
		plan.Fingerprint, plan.Devices, plan.BestName, plan.Created)

	args := randomArgs(c)
	ropts := overlap.RunOptions{Spec: overlap.TPUv4(), TimeScale: timeScale, Faults: faults, Transport: transportKind}
	if traceFile != "" || traceOut != "" || attrib {
		ropts.Trace = true
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res, err := overlap.RunContext(ctx, c, plan.Devices, args, ropts)
	if err != nil {
		return err
	}
	if check {
		want, err := overlap.Interpret(c, plan.Devices, args)
		if err != nil {
			return err
		}
		for d := range want {
			if !res.Values[d].Equal(want[d]) {
				return fmt.Errorf("plan: device %d diverges from the interpreter", d)
			}
		}
	}
	b := res.Breakdown
	fmt.Printf("%-9s step %8.2fms  compute %8.2fms  wire %8.2fms  exposed %8.2fms  async %d  in-flight %d%s\n",
		"plan", b.StepTime*1e3, b.Compute*1e3, b.CollectiveWire*1e3, b.Exposed*1e3,
		b.AsyncTransfers, b.PeakInFlight, checkMark(check))
	if attrib {
		fmt.Print(overlap.Attribute(res.Trace).Render())
	}
	if err := writeTraceArtifacts(res, "plan:"+plan.Fingerprint, plan.Devices, traceFile, traceOut); err != nil {
		return err
	}
	return nil
}

// writeTraceArtifacts renders a run's RunTrace artifact — the one code
// path both exports share — writing the stable JSON to traceOut and the
// Chrome trace to traceFile when requested.
func writeTraceArtifacts(res *overlap.RunResult, model string, devices int, traceFile, traceOut string) error {
	if traceFile == "" && traceOut == "" {
		return nil
	}
	trace := overlap.NewRunTrace(res.RunID, "run", res.Trace)
	trace.Model = model
	trace.Devices = devices
	trace.StepMS = res.Breakdown.StepTime * 1e3
	if traceOut != "" {
		data, err := trace.EncodeJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("          wrote run trace %s to %s\n", trace.ID, traceOut)
	}
	if traceFile != "" {
		data, err := trace.ChromeTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("          wrote %d trace events to %s (run %s)\n", len(res.Trace), traceFile, trace.ID)
	}
	return nil
}

// runMode builds the miniature layer graph, applies the pipeline the
// mode names, executes it on the runtime, and prints the measured
// breakdown (plus, with -attrib, where each collective's wire time hid).
func runMode(cfg models.Config, mode string, devices int, timeScale float64, traceFile, traceOut string, check, attrib bool, faults *overlap.FaultPlan, deadline time.Duration) error {
	c, err := overlap.BuildLayerStep(cfg)
	if err != nil {
		return err
	}
	spec := overlap.TPUv4()
	switch mode {
	case "baseline":
		// Keep the blocking collectives.
	case "rolled":
		opts := core.Options{Spec: spec, Rolled: true, UseCostModel: false, Scheduler: core.SchedulerNone}
		if _, err := core.Apply(c, opts); err != nil {
			return err
		}
	case "overlap":
		// The miniature's shapes would not pass the cost model (which
		// prices the full-size model); decompose unconditionally.
		opts := overlap.DefaultOptions(spec)
		opts.UseCostModel = false
		if _, err := overlap.Apply(c, opts); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (want baseline, rolled, overlap, or all)", mode)
	}

	args := randomArgs(c)
	ropts := overlap.RunOptions{Spec: spec, TimeScale: timeScale, Faults: faults, Transport: transportKind}
	overlapMode := mode == "overlap"
	writeTrace := traceFile != "" && overlapMode
	writeArtifact := traceOut != "" && overlapMode
	if writeTrace || writeArtifact || attrib {
		ropts.Trace = true
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res, err := overlap.RunContext(ctx, c, devices, args, ropts)
	if err != nil {
		return err
	}

	if check {
		want, err := overlap.Interpret(c, devices, args)
		if err != nil {
			return err
		}
		for d := range want {
			if !res.Values[d].Equal(want[d]) {
				return fmt.Errorf("%s: device %d diverges from the interpreter", mode, d)
			}
		}
	}

	b := res.Breakdown
	fmt.Printf("%-9s step %8.2fms  compute %8.2fms  wire %8.2fms  exposed %8.2fms  async %d  in-flight %d%s\n",
		mode, b.StepTime*1e3, b.Compute*1e3, b.CollectiveWire*1e3, b.Exposed*1e3,
		b.AsyncTransfers, b.PeakInFlight, checkMark(check))

	if attrib {
		fmt.Print(overlap.Attribute(res.Trace).Render())
	}
	chromeOut, artifactOut := "", ""
	if writeTrace {
		chromeOut = traceFile
	}
	if writeArtifact {
		artifactOut = traceOut
	}
	if err := writeTraceArtifacts(res, cfg.Name, devices, chromeOut, artifactOut); err != nil {
		return err
	}
	return nil
}

// randomArgs supplies one replicated random tensor per parameter: the
// runtime and interpreter only need well-shaped inputs, and replication
// keeps the decomposed programs' slice bookkeeping meaningful.
func randomArgs(c *overlap.Computation) [][]*tensor.Tensor {
	rng := rand.New(rand.NewSource(42))
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
	}
	return args
}

func checkMark(check bool) string {
	if check {
		return "  [checked]"
	}
	return ""
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlaprun: %v\n", err)
	os.Exit(1)
}
