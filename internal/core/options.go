package core

import "overlap/internal/machine"

// SchedulerKind selects the asynchronous-collective scheduling approach
// from §5.2.
type SchedulerKind int

const (
	// SchedulerBottomUp is the reverse list scheduler of Algorithm 2,
	// the paper's default (slightly better, more general).
	SchedulerBottomUp SchedulerKind = iota
	// SchedulerTopDown is the start-early/done-late forward scheduler.
	SchedulerTopDown
	// SchedulerNone leaves start/done pairs adjacent — communication is
	// decomposed but not overlapped; useful for ablations.
	SchedulerNone
)

func (s SchedulerKind) String() string {
	switch s {
	case SchedulerBottomUp:
		return "bottom-up"
	case SchedulerTopDown:
		return "top-down"
	default:
		return "none"
	}
}

// Options configures the overlap pipeline.
type Options struct {
	// Spec is the machine model used by the cost model and schedulers.
	Spec machine.Spec

	// Unroll enables the degree-2 loop unrolling of §5.4.1: it removes
	// the loop-carried Copy instructions and, for Einsum-ReduceScatter,
	// splits the accumulation into two interleaved chains (plus an
	// alignment epilogue) so CollectivePermuteDones can overlap the
	// other chain's einsum.
	Unroll bool

	// Bidirectional enables the §5.4.2 optimization: each step moves
	// two shards in opposite ring directions, halving the ring's
	// serialized transfer time and doubling per-step computation.
	// Requires an even ring size; odd rings fall back to unidirectional.
	Bidirectional bool

	// Rolled emits the Looped CollectiveEinsum as an actual counted
	// loop (hlo.OpLoop) instead of the expanded sequence. The rolled
	// form is semantically identical but cannot be software-pipelined
	// (start/done pairs cannot straddle the back-edge) and carries the
	// per-iteration aliasing Copy, so it serves as a fidelity/ablation
	// mode; Unroll and Bidirectional are ignored when set.
	Rolled bool

	// UseCostModel gates each site on the §5.5 benefit estimate; when
	// false every matched site is decomposed.
	UseCostModel bool

	// Scheduler selects the §5.2 scheduling approach.
	Scheduler SchedulerKind

	// FuseAddIntoEinsum enables the fusion pass that merges result
	// accumulation with its producing einsum (with the §5.4.3 heuristic
	// of preferring the einsum that already depends on an asynchronous
	// CollectivePermuteDone).
	FuseAddIntoEinsum bool

	// OverlapFriendlyFusion applies the §5.4.3 operand-choice heuristic;
	// when false, fusion picks the first einsum operand (the "bad"
	// default of Fig 11a), exposing the regression the paper describes.
	OverlapFriendlyFusion bool

	// RematerializeGathers duplicates multi-consumer AllGathers so each
	// consuming einsum owns its gather, restoring the single-consumer
	// pattern the decomposition matches. It trades extra wire time for
	// lower memory pressure and more overlap sites, which pays off in
	// autodiff-produced backward passes (the weight gradient shares the
	// forward gather) but not where sharing was already cheap — so it
	// is opt-in.
	RematerializeGathers bool

	// SplitAllReduce canonicalizes each AllReduce into ReduceScatter +
	// AllGather before pattern matching (§2.1's identity), exposing both
	// halves as decomposition targets — a natural extension the paper's
	// future-work discussion implies.
	SplitAllReduce bool

	// ConcatToPadMax rewrites Concat(a,b) on einsum local operands into
	// Max(PadLow, PadHigh) form (§5.4.3) so the pre-processing can fuse
	// with the einsum.
	ConcatToPadMax bool

	// GradBucketBytes, when positive, runs the DDP-style gradient
	// bucketing pass before everything else: ring AllReduces (the
	// backward pass's per-weight gradient reductions) are grouped into
	// buckets of at most this many bytes and lowered directly to an
	// asynchronous ring all-reduce, so early buckets communicate while
	// later layers' backward einsums still compute. Zero disables the
	// pass. The value is a searchable autotuner knob: small buckets
	// start communicating earlier, large buckets amortize per-step
	// latency better.
	GradBucketBytes int64

	// KernelSplitK, when >= 2, asks the kernel engine to execute skinny
	// GEMMs (the decomposed loop's partial einsums: few output rows,
	// large contraction) by partitioning the contraction into this many
	// ranges reduced with a fixed-shape binary tree. For a fixed factor
	// results are byte-identical across worker counts, but different
	// factors reassociate the contraction and round differently — so
	// the factor is a planned, fingerprinted decision the autotuner
	// searches per program, never a machine-derived heuristic. 0 (and
	// 1) keep every kernel on the reference accumulation order.
	KernelSplitK int
}

// DefaultOptions returns the configuration the paper deploys: all
// optimizations on, bottom-up scheduling, cost model enabled. It panics
// on an invalid machine spec (see machine.Spec.Validate) — the
// alternative is NaN/Inf silently leaking into every cost-model and
// simulator time derived from the returned options.
func DefaultOptions(spec machine.Spec) Options {
	mustValidSpec(spec)
	return Options{
		Spec:                  spec,
		Unroll:                true,
		Bidirectional:         true,
		UseCostModel:          true,
		Scheduler:             SchedulerBottomUp,
		FuseAddIntoEinsum:     true,
		OverlapFriendlyFusion: true,
		ConcatToPadMax:        false,
	}
}

// BaselineOptions returns a configuration with the overlap feature off;
// Apply becomes a no-op and the program keeps its blocking collectives.
// Like DefaultOptions it panics on an invalid machine spec.
func BaselineOptions(spec machine.Spec) Options {
	mustValidSpec(spec)
	return Options{Spec: spec, Scheduler: SchedulerNone}
}

// mustValidSpec rejects malformed machine specs at options-construction
// time with a clear panic instead of letting NaN/Inf propagate.
func mustValidSpec(spec machine.Spec) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
}

// Knobs is the serializable identity of an Options value: only the
// rewrite-changing booleans and the scheduler, with JSON tags pinned by
// golden tests. The machine spec is deliberately excluded — persisted
// artifacts key on the spec fingerprint and re-attach a live Spec on
// decode — so one encoding serves the autotune decision cache, the
// compiled Plan artifact, and the serving daemon.
type Knobs struct {
	Scheduler             string `json:"scheduler"`
	Unroll                bool   `json:"unroll,omitempty"`
	Bidirectional         bool   `json:"bidirectional,omitempty"`
	Rolled                bool   `json:"rolled,omitempty"`
	FuseAddIntoEinsum     bool   `json:"fuse_add_into_einsum,omitempty"`
	OverlapFriendlyFusion bool   `json:"overlap_friendly_fusion,omitempty"`
	RematerializeGathers  bool   `json:"rematerialize_gathers,omitempty"`
	SplitAllReduce        bool   `json:"split_all_reduce,omitempty"`
	ConcatToPadMax        bool   `json:"concat_to_pad_max,omitempty"`
	GradBucketBytes       int64  `json:"grad_bucket_bytes,omitempty"`
	KernelSplitK          int    `json:"kernel_split_k,omitempty"`
}

// Knobs strips o down to its serializable rewrite knobs.
func (o Options) Knobs() Knobs {
	return Knobs{
		Scheduler:             o.Scheduler.String(),
		Unroll:                o.Unroll,
		Bidirectional:         o.Bidirectional,
		Rolled:                o.Rolled,
		FuseAddIntoEinsum:     o.FuseAddIntoEinsum,
		OverlapFriendlyFusion: o.OverlapFriendlyFusion,
		RematerializeGathers:  o.RematerializeGathers,
		SplitAllReduce:        o.SplitAllReduce,
		ConcatToPadMax:        o.ConcatToPadMax,
		GradBucketBytes:       o.GradBucketBytes,
		KernelSplitK:          o.KernelSplitK,
	}
}

// Options reconstitutes a full pipeline configuration from the knobs by
// re-attaching a live machine spec. An unknown scheduler name degrades
// to SchedulerNone (the conservative choice for artifacts written by a
// future version).
func (k Knobs) Options(spec machine.Spec) Options {
	sched := SchedulerNone
	switch k.Scheduler {
	case SchedulerBottomUp.String():
		sched = SchedulerBottomUp
	case SchedulerTopDown.String():
		sched = SchedulerTopDown
	}
	return Options{
		Spec:                  spec,
		Scheduler:             sched,
		Unroll:                k.Unroll,
		Bidirectional:         k.Bidirectional,
		Rolled:                k.Rolled,
		FuseAddIntoEinsum:     k.FuseAddIntoEinsum,
		OverlapFriendlyFusion: k.OverlapFriendlyFusion,
		RematerializeGathers:  k.RematerializeGathers,
		SplitAllReduce:        k.SplitAllReduce,
		ConcatToPadMax:        k.ConcatToPadMax,
		GradBucketBytes:       k.GradBucketBytes,
		KernelSplitK:          k.KernelSplitK,
	}
}

// Report summarizes what the pipeline did to a computation.
type Report struct {
	// SitesFound counts matched collective/einsum pairs.
	SitesFound int
	// SitesDecomposed counts sites actually rewritten.
	SitesDecomposed int
	// SitesRejected counts sites the cost model declined.
	SitesRejected int
	// Decisions records the per-site cost-model evaluation.
	Decisions []Decision
	// FusionsFormed counts fusion nodes created.
	FusionsFormed int
	// Buckets describes the gradient buckets formed when
	// GradBucketBytes is set.
	Buckets []BucketInfo
}
