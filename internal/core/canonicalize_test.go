package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func allReduceSite(n int) (*hlo.Computation, func() [][]*tensor.Tensor) {
	build := hlo.NewComputation("ar_site")
	a := build.Parameter(0, "a", []int{8, 6})
	b := build.Parameter(1, "b", []int{6, 4})
	ein := build.Einsum("mk,kn->mn", a, b)
	build.AllReduce(ein, ringGroups(n))
	rng := rand.New(rand.NewSource(51))
	args := func() [][]*tensor.Tensor {
		mk := func(r, c int) []*tensor.Tensor {
			out := make([]*tensor.Tensor, n)
			for d := range out {
				out[d] = tensor.Rand(rng, r, c)
			}
			return out
		}
		return [][]*tensor.Tensor{mk(8, 6), mk(6, 4)}
	}
	return build, args
}

func TestCanonicalizeAllReduceEquivalence(t *testing.T) {
	const n = 4
	c, mkArgs := allReduceSite(n)
	args := mkArgs()
	ref, err := sim.Interpret(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	if got := CanonicalizeAllReduce(c); got != 1 {
		t.Fatalf("rewrote %d all-reduces, want 1", got)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpAllReduce {
			t.Fatal("all-reduce survived canonicalization")
		}
	}
	got, err := sim.Interpret(c, n, args)
	if err != nil {
		t.Fatal(err)
	}
	for d := range ref {
		if !got[d].AllClose(ref[d], 1e-12) {
			t.Fatalf("device %d diverged", d)
		}
	}
}

// The split exposes the ReduceScatter half as a decomposition site: the
// full pipeline with SplitAllReduce must decompose where the plain
// pipeline found nothing.
func TestSplitAllReduceExposesSites(t *testing.T) {
	const n = 4
	plain, _ := allReduceSite(n)
	opts := forceOpts(true, true, SchedulerBottomUp, true)
	report, err := Apply(plain, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesFound != 0 {
		t.Fatalf("plain pipeline matched %d sites on an all-reduce", report.SitesFound)
	}

	split, mkArgs := allReduceSite(n)
	args := mkArgs()
	baseline, _ := allReduceSite(n)
	want, err := sim.Interpret(baseline, n, args)
	if err != nil {
		t.Fatal(err)
	}
	opts.SplitAllReduce = true
	report, err = Apply(split, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesDecomposed == 0 {
		t.Fatalf("split pipeline decomposed nothing: %+v", report)
	}
	got, err := sim.Interpret(split, n, args)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if !got[d].AllClose(want[d], 1e-9) {
			t.Fatalf("device %d diverged after split+decompose", d)
		}
	}
}

func TestCanonicalizeSkipsIndivisible(t *testing.T) {
	c := hlo.NewComputation("odd")
	a := c.Parameter(0, "a", []int{7, 5})
	c.AllReduce(a, ringGroups(4)) // no dim divisible by 4
	if got := CanonicalizeAllReduce(c); got != 0 {
		t.Fatalf("rewrote %d, want 0", got)
	}
}
