package sim_test

import (
	"bytes"
	"testing"

	"overlap/internal/core"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/sim"
)

// TestSimulateTraceDeterministic pins byte-identical TraceJSON across
// two identical SimulateTrace runs: the trace path must stay free of
// map-iteration or other nondeterminism, or recorded timelines stop
// being diffable across revisions.
func TestSimulateTraceDeterministic(t *testing.T) {
	cfg, err := models.Miniature(models.Table2()[0], 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	build := func() []byte {
		c, err := models.BuildLayerStep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions(machine.TPUv4())
		opts.UseCostModel = false
		if _, err := core.Apply(c, opts); err != nil {
			t.Fatal(err)
		}
		_, events, err := sim.SimulateTrace(c, 4, machine.TPUv4())
		if err != nil {
			t.Fatal(err)
		}
		data, err := sim.TraceJSON(events)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatal("no events traced")
		}
		return data
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical SimulateTrace runs diverged: %d vs %d bytes", len(a), len(b))
	}
}
