// Command overlaptune autotunes a Table 1/2 model miniature: it
// enumerates every overlap-pipeline variant, ranks them with the timing
// simulator, executes the best few for real on the concurrent goroutine
// runtime, and prints the winning configuration, the
// predicted-vs-measured table, the fitted machine calibration, and the
// decision-cache status. Tuning the same miniature again answers from
// the cache without executing anything.
//
// Usage:
//
//	overlaptune -model GPT_32B -devices 4
//	overlaptune -model GLaM_1T -devices 8 -topk 4 -no-cache
//	overlaptune -model GPT_32B -cache /tmp/tune.json   # private cache
//	overlaptune -model GPT_32B -metrics-out tune.prom  # telemetry export
//	overlaptune -model GPT_32B -serve :9090            # live /metrics while tuning
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"overlap"
	"overlap/internal/models"
	"overlap/internal/tensor"
)

func main() {
	// Keep this binary usable as a proc-transport worker (the transport
	// re-executes its parent); a no-op in ordinary invocations.
	overlap.MaybeTransportWorker()

	model := flag.String("model", "GPT_32B", "model name from Table 1 or Table 2")
	devices := flag.Int("devices", 4, "ring size (goroutine devices)")
	dim := flag.Int("dim", 8, "miniature per-head dimension (scales every tensor)")
	topK := flag.Int("topk", 3, "candidates to execute for real after simulator ranking")
	timeScale := flag.Float64("timescale", 500, "wire-delay scale: modeled seconds sleep this many times longer")
	repeats := flag.Int("repeats", 1, "measured repetitions per executed candidate (minimum kept)")
	cachePath := flag.String("cache", "", "decision cache file (default: per-user cache dir)")
	noCache := flag.Bool("no-cache", false, "skip the decision cache entirely")
	noCalibrate := flag.Bool("no-calibrate", false, "skip fitting the machine spec to measured breakdowns")
	metricsOut := flag.String("metrics-out", "", "export telemetry to this file (Prometheus text, or JSON with a .json suffix)")
	serveAddr := flag.String("serve", "", "serve a live /metrics endpoint at this address and stay up after tuning")
	kernelWorkers := flag.Int("kernel-workers", 0, "intra-op einsum kernel parallelism (0 = GOMAXPROCS); keyed into the decision cache")
	kernelSplitK := flag.Int("kernel-splitk", 0, "ambient split-K factor for skinny einsum kernels (0 = off); keyed into the decision cache, and searched as a knob regardless")
	planOut := flag.String("plan-out", "", "write the compiled Plan artifact (tuned, scheduled program as JSON) to this file; overlaprun -plan-in and the overlapd daemon execute the same artifact")
	flag.Parse()

	overlap.SetKernelWorkers(*kernelWorkers)
	overlap.SetKernelSplitK(*kernelSplitK)

	if *serveAddr != "" {
		_, addr, err := overlap.ServeMetrics(*serveAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving telemetry at http://%s/metrics\n", addr)
	}

	cfg, err := models.ByName(*model)
	if err != nil {
		fail(err)
	}
	mini, err := overlap.Miniature(cfg, *devices, *dim)
	if err != nil {
		fail(err)
	}
	c, err := overlap.BuildLayerStep(mini)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d devices, model dim %d, ff dim %d, %d tokens\n",
		mini.Name, *devices, mini.ModelDim, mini.FFDim, mini.Tokens())

	res, err := overlap.Autotune(c, *devices, randomArgs(c), overlap.AutotuneOptions{
		Spec:         overlap.TPUv4(),
		TopK:         *topK,
		TimeScale:    *timeScale,
		Repeats:      *repeats,
		CachePath:    *cachePath,
		DisableCache: *noCache,
		Calibrate:    !*noCalibrate,
	})
	if err != nil {
		fail(err)
	}
	report(res)

	if *planOut != "" {
		plan, err := overlap.PlanFromResult(c, *devices, res)
		if err != nil {
			fail(err)
		}
		data, err := plan.EncodeJSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote compiled plan to %s (fingerprint %s)\n", *planOut, plan.Fingerprint)
	}

	if *metricsOut != "" {
		if err := overlap.Metrics().WriteFile(*metricsOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote telemetry to %s\n", *metricsOut)
	}
	if *serveAddr != "" {
		fmt.Println("tuning done; serving /metrics until interrupted")
		select {}
	}
}

func report(res *overlap.AutotuneResult) {
	switch {
	case res.CacheHit:
		fmt.Printf("cache: warm hit (%s) — 0 runtime executions\n", res.CachePath)
	case res.CachePath != "":
		fmt.Printf("cache: cold (%s) — decision stored\n", res.CachePath)
	default:
		fmt.Println("cache: disabled")
	}

	if !res.CacheHit {
		unique, executed := 0, 0
		for _, cand := range res.Candidates {
			if cand.Err == "" && cand.DuplicateOf == "" {
				unique++
			}
			if cand.Executed {
				executed++
			}
		}
		fmt.Printf("searched %d candidates (%d unique programs), executed %d (%d runs)\n",
			len(res.Candidates), unique, executed, res.Executions)
		fmt.Printf("  %-60s %12s %12s\n", "candidate", "predicted", "measured")
		for _, cand := range res.Candidates {
			if !cand.Executed {
				continue
			}
			mark := ""
			if cand.Name == res.BestName {
				mark = "  <- winner"
			}
			fmt.Printf("  %-60s %10.3fms %10.3fms%s\n",
				cand.Name, cand.Predicted.StepTime*1e3, cand.MeasuredWall*1e3, mark)
		}
	}

	if res.BestIsBaseline {
		fmt.Println("winner: baseline — leaving the blocking program untouched is fastest here")
	} else {
		fmt.Printf("winner: %s\n", res.BestName)
	}
	fmt.Printf("        predicted %.3fms (modeled), measured %.3fms (wall)\n",
		res.PredictedWall*1e3, res.MeasuredWall*1e3)

	cal := res.Calibration
	if res.Residual >= 0 {
		fmt.Printf("calibration: compute x%.3g, wire x%.3g, overhead x%.3g; residual %.1f%%\n",
			cal.ComputeScale, cal.WireScale, cal.OverheadScale, res.Residual*100)
	}
	fmt.Printf("key: %s\n", res.Fingerprint)
}

// randomArgs supplies one replicated random tensor per parameter, the
// same convention overlaprun uses.
func randomArgs(c *overlap.Computation) [][]*tensor.Tensor {
	rng := rand.New(rand.NewSource(42))
	params := c.Parameters()
	args := make([][]*tensor.Tensor, len(params))
	for i, p := range params {
		args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
	}
	return args
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "overlaptune: %v\n", err)
	os.Exit(1)
}
