package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

func TestSwapReshapeConcat(t *testing.T) {
	build := func() *hlo.Computation {
		c := hlo.NewComputation("swap_rc")
		a := c.Parameter(0, "a", []int{2, 6})
		b := c.Parameter(1, "b", []int{2, 6})
		ra := c.Reshape(a, 2, 3, 2)
		rb := c.Reshape(b, 2, 3, 2)
		cat := c.Concat(0, ra, rb)
		c.Tuple(c.Copy(cat))
		return c
	}
	rng := rand.New(rand.NewSource(71))
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 2, 6)}, {tensor.Rand(rng, 2, 6)}}
	c := build()
	if n := SwapReshapeConcat(c); n != 1 {
		t.Fatalf("rewrote %d, want 1", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// The concat must now consume the raw operands.
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpConcat && in.Operands[0].Op == hlo.OpReshape {
			t.Fatal("concat still consumes reshapes")
		}
	}
	// Compare the copy feeding the tuple.
	refAll, _ := sim.InterpretAll(build(), 1, args)
	gotAll, _ := sim.InterpretAll(c, 1, args)
	refRoot := refCopyValue(t, refAll)
	gotRoot := refCopyValue(t, gotAll)
	if !gotRoot.AllClose(refRoot, 1e-12) {
		t.Fatal("swap changed the concat value")
	}
}

func refCopyValue(t *testing.T, vals map[*hlo.Instruction][]*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	for in, v := range vals {
		if in.Op == hlo.OpCopy {
			return v[0]
		}
	}
	t.Fatal("no copy in graph")
	return nil
}

func TestSwapReshapeConcatSkipsUnsafe(t *testing.T) {
	c := hlo.NewComputation("unsafe")
	a := c.Parameter(0, "a", []int{6, 2})
	b := c.Parameter(1, "b", []int{6, 2})
	// Reshape changes the leading dim: not the handled pattern.
	ra := c.Reshape(a, 3, 4)
	rb := c.Reshape(b, 3, 4)
	c.Tuple(c.Concat(0, ra, rb))
	if n := SwapReshapeConcat(c); n != 0 {
		t.Fatalf("rewrote %d unsafe concats", n)
	}
}

func TestSwapReshapeSlice(t *testing.T) {
	build := func() *hlo.Computation {
		c := hlo.NewComputation("swap_rs")
		a := c.Parameter(0, "a", []int{4, 6})
		r := c.Reshape(a, 4, 2, 3)
		s := c.Slice(r, []int{1, 0, 0}, []int{3, 2, 3})
		c.Tuple(c.Copy(s))
		return c
	}
	rng := rand.New(rand.NewSource(72))
	args := [][]*tensor.Tensor{{tensor.Rand(rng, 4, 6)}}
	refAll, err := sim.InterpretAll(build(), 1, args)
	if err != nil {
		t.Fatal(err)
	}
	c := build()
	if n := SwapReshapeSlice(c); n != 1 {
		t.Fatalf("rewrote %d, want 1", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	gotAll, err := sim.InterpretAll(c, 1, args)
	if err != nil {
		t.Fatal(err)
	}
	if !refCopyValue(t, gotAll).AllClose(refCopyValue(t, refAll), 1e-12) {
		t.Fatal("swap changed the slice value")
	}
	// The slice must now act on the raw operand.
	for _, in := range c.Instructions() {
		if in.Op == hlo.OpSlice && in.Operands[0].Op == hlo.OpReshape {
			t.Fatal("slice still consumes a reshape")
		}
	}
}

func TestSwapReshapeSliceSkipsInnerSlices(t *testing.T) {
	c := hlo.NewComputation("inner")
	a := c.Parameter(0, "a", []int{4, 6})
	r := c.Reshape(a, 4, 2, 3)
	c.Tuple(c.Slice(r, []int{0, 1, 0}, []int{4, 2, 3})) // slices dim 1
	if n := SwapReshapeSlice(c); n != 0 {
		t.Fatalf("rewrote %d inner-dim slices", n)
	}
}
