package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
)

// bigSite returns an AllGather-Einsum site whose computation dominates
// the per-step transfers, so a good schedule hides them — the regime
// the cost model enables the feature in.
func bigSite(n int) *hlo.Computation {
	c := hlo.NewComputation("big")
	a := c.Parameter(0, "a", []int{512, 2048})
	b := c.Parameter(1, "b", []int{2048, 8192})
	full := c.AllGather(a, 0, ringGroups(n))
	c.Einsum("mk,kn->mn", full, b)
	return c
}

func simulateWith(t *testing.T, c *hlo.Computation, n int, spec machine.Spec) sim.Breakdown {
	t.Helper()
	res, err := sim.Simulate(c, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSchedulingHidesCommunication is the end-to-end performance claim
// on one site: decompose + schedule beats the blocking baseline, and
// the scheduled version hides most of the ring transfer time.
func TestSchedulingHidesCommunication(t *testing.T) {
	const n = 8
	spec := machine.TPUv4()
	baseline := simulateWith(t, bigSite(n), n, spec)

	for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown} {
		c := bigSite(n)
		opts := forceOpts(true, true, sched, true)
		if _, err := Apply(c, opts); err != nil {
			t.Fatal(err)
		}
		res := simulateWith(t, c, n, spec)
		if res.StepTime >= baseline.StepTime {
			t.Fatalf("%v: overlapped %.3gs not faster than baseline %.3gs", sched, res.StepTime, baseline.StepTime)
		}
		// The only exposure left should be the pipeline fill: the
		// prologue and first-iteration transfers, which have no prior
		// compute to hide behind in an isolated single-site program.
		if res.Exposed > 0.65*baseline.Exposed {
			t.Fatalf("%v: exposed comm %.3g not substantially below baseline %.3g", sched, res.Exposed, baseline.Exposed)
		}
	}
}

// TestSchedulerNoneKeepsBlockingPairs: without scheduling the program is
// decomposed but start/done pairs stay effectively adjacent, so the
// exposed communication remains near the full ring time.
func TestSchedulerNoneVsBottomUp(t *testing.T) {
	const n = 8
	spec := machine.TPUv4()
	mk := func(s SchedulerKind) sim.Breakdown {
		c := bigSite(n)
		if _, err := Apply(c, forceOpts(true, true, s, true)); err != nil {
			t.Fatal(err)
		}
		return simulateWith(t, c, n, spec)
	}
	none := mk(SchedulerNone)
	bu := mk(SchedulerBottomUp)
	if bu.StepTime >= none.StepTime {
		t.Fatalf("bottom-up %.3g not faster than unscheduled %.3g", bu.StepTime, none.StepTime)
	}
}

// TestScheduleRespectsInFlightBudget walks both schedulers' output and
// checks the number of outstanding start/done windows never exceeds the
// machine budget.
func TestScheduleRespectsInFlightBudget(t *testing.T) {
	const n = 8
	spec := machine.TPUv4()
	spec.MaxInFlight = 2
	for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown} {
		c := bigSite(n)
		opts := forceOpts(true, true, sched, true)
		opts.Spec = spec
		if _, err := Apply(c, opts); err != nil {
			t.Fatal(err)
		}
		inFlight, peak := 0, 0
		for _, in := range c.Instructions() {
			switch in.Op {
			case hlo.OpCollectivePermuteStart:
				inFlight++
			case hlo.OpCollectivePermuteDone:
				inFlight--
			}
			if inFlight > peak {
				peak = inFlight
			}
		}
		if peak > spec.MaxInFlight {
			t.Fatalf("%v: schedule peaks at %d in-flight transfers, budget %d", sched, peak, spec.MaxInFlight)
		}
	}
}

// TestSchedulesAreValidTopologicalOrders re-verifies the computation
// after each scheduler (SetSchedule would reject invalid orders; this
// guards the whole pipeline).
func TestSchedulesAreValidTopologicalOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range []siteKind{siteAGNonContracting, siteRS, siteAGBatch} {
		for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown} {
			tc := makeSite(kind, ringGroups(6), 6, rng)
			c := tc.build()
			if _, err := Apply(c, forceOpts(true, true, sched, true)); err != nil {
				t.Fatal(err)
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("%s/%v: %v", siteKindNames[kind], sched, err)
			}
		}
	}
}

// TestStartsBeforeDones: in both schedules every start precedes its done
// with at least one instruction between them when compute is available.
func TestStartEarlyDoneLateShape(t *testing.T) {
	const n = 8
	for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown} {
		c := bigSite(n)
		if _, err := Apply(c, forceOpts(true, true, sched, true)); err != nil {
			t.Fatal(err)
		}
		pos := map[*hlo.Instruction]int{}
		for i, in := range c.Instructions() {
			pos[in] = i
		}
		separated := 0
		total := 0
		for _, in := range c.Instructions() {
			if in.Op != hlo.OpCollectivePermuteDone {
				continue
			}
			total++
			if pos[in]-pos[in.Operands[0]] > 1 {
				separated++
			}
		}
		if total == 0 {
			t.Fatalf("%v: no async pairs emitted", sched)
		}
		if separated == 0 {
			t.Fatalf("%v: no start/done pair has work scheduled between (total %d)", sched, total)
		}
	}
}

// TestLatencyEstimates sanity-checks the scheduler's latency table.
func TestLatencyEstimates(t *testing.T) {
	spec := machine.TPUv4()
	c := hlo.NewComputation("lat")
	a := c.Parameter(0, "a", []int{1024, 1024})
	start := c.CollectivePermuteStart(a, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	done := c.CollectivePermuteDone(start)
	_ = done
	if latency(start, spec) != 0 {
		t.Fatal("start latency must be zero")
	}
	want := spec.TransferTime(a.ByteSize(), 1)
	if got := latency(done, spec); got != want {
		t.Fatalf("done latency = %v, want %v", got, want)
	}
	ein := c.Einsum("mk,kn->mn", a, a)
	if latency(ein, spec) != spec.InstructionCost(ein) {
		t.Fatal("einsum latency must match instruction cost")
	}
}
