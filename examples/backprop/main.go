// backprop derives a training step automatically: the forward pass of a
// weight-gathered layer is differentiated with the built-in reverse-mode
// autodiff, the forward AllGather's adjoint comes out as a
// ReduceScatter (the §2.2 transposition), and the overlap pipeline then
// decomposes both directions.
//
// Run with: go run ./examples/backprop
package main

import (
	"fmt"
	"log"

	"overlap"
	"overlap/internal/hlo"
)

func main() {
	const n = 4
	spec := overlap.TPUv4()
	c := overlap.NewComputation("trainstep")
	groups := overlap.NewRing(n).AxisGroups(0)

	// Forward: out = einsum(AllGather(x), w); loss = <out, probe>.
	x := c.Parameter(0, "x", []int{2048, 1024})
	w := c.Parameter(1, "w", []int{1024, 4096})
	probe := c.Parameter(2, "probe", []int{2048 * n, 4096})
	seed := c.Parameter(3, "seed", nil)
	full := c.AllGather(x, 0, groups)
	out := c.Einsum("mk,kn->mn", full, w)
	loss := c.Einsum("mn,mn->", out, probe)

	grads, err := overlap.Gradients(c, loss, seed, []*overlap.Instruction{x, w})
	if err != nil {
		log.Fatal(err)
	}
	c.Tuple(grads[x], grads[w])

	// The backward pass contains the transposed collective.
	ags, rss := 0, 0
	for _, in := range c.Instructions() {
		switch in.Op {
		case hlo.OpAllGather:
			ags++
		case hlo.OpReduceScatter:
			rss++
		}
	}
	fmt.Printf("forward+backward collectives: %d all-gather, %d reduce-scatter\n", ags, rss)

	baseBd, err := overlap.Simulate(c, n, spec)
	if err != nil {
		log.Fatal(err)
	}

	opts := overlap.DefaultOptions(spec)
	opts.RematerializeGathers = true // backward shares the forward gather
	opts.UseCostModel = false
	report, err := overlap.Apply(c, opts)
	if err != nil {
		log.Fatal(err)
	}
	overBd, err := overlap.Simulate(c, n, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed sites:   %d (found %d)\n", report.SitesDecomposed, report.SitesFound)
	fmt.Printf("baseline step:      %.3f ms (%.0f%% exposed communication)\n",
		1e3*baseBd.StepTime, 100*baseBd.CommFraction())
	fmt.Printf("overlapped step:    %.3f ms (%.0f%% exposed communication)\n",
		1e3*overBd.StepTime, 100*overBd.CommFraction())
	fmt.Printf("speedup:            %.2fx\n", baseBd.StepTime/overBd.StepTime)
	fmt.Printf("peak device memory: %.2f GiB\n", float64(overlap.PeakMemory(c).PeakBytes)/(1<<30))
}
