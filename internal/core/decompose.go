package core

import (
	"fmt"

	"overlap/internal/hlo"
)

// Decompose rewrites one matched site into its Looped CollectiveEinsum
// form (emitted fully expanded, since the trip count equals the known
// partition count). The blocking CollectivePermutes it emits are turned
// asynchronous by the later scheduling pass.
//
// The rewrite replaces all uses of the pattern's root (the einsum for
// AllGather-Einsum, the ReduceScatter for Einsum-ReduceScatter) and
// leaves dead originals for DCE.
func Decompose(c *hlo.Computation, p Pattern, opts Options) error {
	if opts.Rolled {
		return DecomposeRolled(c, p)
	}
	var err error
	c.WithRootPreserved(func() { err = decomposeExpanded(c, p, opts) })
	return err
}

func decomposeExpanded(c *hlo.Computation, p Pattern, opts Options) error {
	bidirectional := opts.Bidirectional && p.Ring.N%2 == 0
	var result *hlo.Instruction
	var root *hlo.Instruction
	switch p.Kind {
	case AllGatherEinsum:
		root = p.Einsum
		if bidirectional {
			result = decomposeAllGatherBidirectional(c, p, opts)
		} else {
			result = decomposeAllGather(c, p, opts)
		}
	case EinsumReduceScatter:
		root = p.Collective
		switch {
		case bidirectional:
			result = decomposeReduceScatterBidirectional(c, p, opts)
		case opts.Unroll && p.Ring.N%2 == 0:
			result = decomposeReduceScatterUnrolled(c, p)
		default:
			result = decomposeReduceScatter(c, p, opts)
		}
	default:
		return fmt.Errorf("core: unknown pattern kind %v", p.Kind)
	}
	c.ReplaceAllUsesWith(root, result)
	c.ScheduleStableTopological()
	c.RemoveDeadCode()
	return c.Verify()
}

// maybeCopy models the loop-carried buffer copy the naive (non-unrolled)
// rolled loop incurs (§5.4.1); unrolling provides double buffering and
// eliminates it.
func maybeCopy(c *hlo.Computation, v *hlo.Instruction, opts Options) *hlo.Instruction {
	if opts.Unroll {
		return v
	}
	return c.Copy(v)
}

// staticOffsets returns all-zero offsets of the given rank with position
// dim replaced by off.
func staticOffsets(rank, dim int, off hlo.DynOffset) []hlo.DynOffset {
	out := make([]hlo.DynOffset, rank)
	for i := range out {
		out[i] = hlo.Static(0)
	}
	if dim >= 0 {
		out[dim] = off
	}
	return out
}

// einsumWith rebuilds the pattern's einsum with operand side replaced.
func einsumWith(c *hlo.Computation, p Pattern, side int, repl *hlo.Instruction) *hlo.Instruction {
	ops := [2]*hlo.Instruction{p.Einsum.Operands[0], p.Einsum.Operands[1]}
	ops[side] = repl
	return c.Einsum(p.Einsum.EinsumSpec, ops[0], ops[1])
}

// sliceOther dynamic-slices the non-gathered operand along OtherDim to
// the shard selected by ((pos + add) mod N) — the Case 2/3 input
// preparation of §5.1.
func sliceOther(c *hlo.Computation, p Pattern, add, shard int) *hlo.Instruction {
	other := p.Einsum.Operands[1-p.Side]
	sizes := append([]int(nil), other.Shape...)
	sizes[p.OtherDim] = shard
	return c.DynamicSlice(other, staticOffsets(len(other.Shape), p.OtherDim, p.Ring.PosOffset(add, shard)), sizes)
}

// decomposeAllGather emits the unidirectional Looped CollectiveEinsum
// for an AllGather-Einsum site (Algorithm 1, AllGather flavor): shards
// circular-shift left while each device computes on the shard it holds;
// the shard held at step i on ring position pos is (pos + i) mod N.
func decomposeAllGather(c *hlo.Computation, p Pattern, opts Options) *hlo.Instruction {
	n := p.Ring.N
	shardOp := p.Collective.Operands[0]
	shard := shardOp.Shape[p.GatherDim]
	left := p.Ring.ShiftPairs(-1)

	result := c.Zeros("", p.Einsum.Shape)
	cur := shardOp
	defer c.SetBuildGroup(0)
	for i := 0; i < n; i++ {
		c.NewBuildGroup()
		var next *hlo.Instruction
		if i < n-1 {
			next = c.CollectivePermute(maybeCopy(c, cur, opts), left)
		}
		var partial *hlo.Instruction
		switch p.Case {
		case CaseNonContracting:
			partial = einsumWith(c, p, p.Side, cur)
			off := staticOffsets(len(p.Einsum.Shape), p.OutDim, p.Ring.PosOffset(i, partial.Shape[p.OutDim]))
			result = c.DynamicUpdateSlice(result, partial, off)
		case CaseContracting:
			partial = buildEinsum(c, p, cur, sliceOther(c, p, i, shard))
			result = c.Add(result, partial)
		case CaseBatch:
			partial = buildEinsum(c, p, cur, sliceOther(c, p, i, shard))
			off := staticOffsets(len(p.Einsum.Shape), p.OutDim, p.Ring.PosOffset(i, partial.Shape[p.OutDim]))
			result = c.DynamicUpdateSlice(result, partial, off)
		}
		cur = next
	}
	return result
}

// decomposeAllGatherBidirectional emits the §5.4.2 variant: a prologue
// shifts each local shard clockwise by one, then every step computes on
// two shards at once — the counter-clockwise stream holding shard
// (pos + i) and the clockwise stream holding shard (pos - 1 - i) — and
// forwards them in opposite directions.
func decomposeAllGatherBidirectional(c *hlo.Computation, p Pattern, opts Options) *hlo.Instruction {
	n := p.Ring.N
	shardOp := p.Collective.Operands[0]
	shard := shardOp.Shape[p.GatherDim]
	left := p.Ring.ShiftPairs(-1)
	right := p.Ring.ShiftPairs(+1)

	result := c.Zeros("", p.Einsum.Shape)
	ccw := shardOp
	cw := c.CollectivePermute(shardOp, right) // prologue
	defer c.SetBuildGroup(0)
	for i := 0; i < n/2; i++ {
		c.NewBuildGroup()
		var nextCCW, nextCW *hlo.Instruction
		if i < n/2-1 {
			nextCCW = c.CollectivePermute(maybeCopy(c, ccw, opts), left)
			nextCW = c.CollectivePermute(maybeCopy(c, cw, opts), right)
		}
		switch p.Case {
		case CaseContracting:
			// Both shards contribute additively through one einsum over
			// the concatenated contracting dimension — the "single
			// operation" of §5.4.2, which doubles the per-step
			// computation and fuses with the accumulation.
			pair := c.Concat(p.GatherDim, ccw, cw)
			oCat := c.Concat(p.OtherDim, sliceOther(c, p, i, shard), sliceOther(c, p, -1-i, shard))
			partial := buildEinsum(c, p, pair, oCat)
			result = c.Add(result, partial)
		case CaseNonContracting, CaseBatch:
			// The two shards land at non-adjacent output offsets. One
			// concatenated einsum would need a multi-output fusion to
			// keep its result out of memory, which the machine model
			// does not represent; emitting one einsum per direction
			// keeps each partial fused with its own result update while
			// preserving the doubled per-step computation.
			for k, stream := range []*hlo.Instruction{ccw, cw} {
				// One fusion scope per direction so each partial einsum
				// fuses with its own result update.
				c.NewBuildGroup()
				add := i
				if k == 1 {
					add = -1 - i
				}
				var partial *hlo.Instruction
				if p.Case == CaseNonContracting {
					partial = einsumWith(c, p, p.Side, stream)
				} else {
					partial = buildEinsum(c, p, stream, sliceOther(c, p, add, shard))
				}
				off := staticOffsets(len(p.Einsum.Shape), p.OutDim, p.Ring.PosOffset(add, partial.Shape[p.OutDim]))
				result = c.DynamicUpdateSlice(result, partial, off)
			}
		}
		ccw, cw = nextCCW, nextCW
	}
	return result
}

// decomposeReduceScatter emits the unidirectional Einsum-ReduceScatter
// loop (Algorithm 1, ReduceScatter flavor): an accumulator shard
// circular-shifts left every step — including step 0, per Algorithm 1 —
// and ring position pos computes the partial for shard (pos + i + 1)
// mod N, so the final shard id matches the device's position.
func decomposeReduceScatter(c *hlo.Computation, p Pattern, opts Options) *hlo.Instruction {
	n := p.Ring.N
	x := p.Einsum.Operands[p.SliceSide]
	shard := x.Shape[p.SliceDim] / n
	left := p.Ring.ShiftPairs(-1)

	acc := c.Zeros("", p.Collective.Shape)
	defer c.SetBuildGroup(0)
	for i := 0; i < n; i++ {
		c.NewBuildGroup()
		sent := c.CollectivePermute(maybeCopy(c, acc, opts), left)
		xs := sliceX(c, p, i+1, shard)
		partial := einsumWith(c, p, p.SliceSide, xs)
		acc = c.Add(sent, partial)
	}
	return acc
}

// decomposeReduceScatterUnrolled emits the §5.4.1 degree-2 unrolled
// variant (Fig 8): the accumulation is split into two independent
// chains that each hop two ring positions per step — chain A gathering
// the even-distance contributions of shard pos (indices pos + 2j + 2)
// and chain B the odd-distance contributions of shard pos + 1 (indices
// pos + 2j + 3) — so each chain's CollectivePermuteDone can overlap the
// other chain's einsum even when the accumulation is fused. An epilogue
// CollectivePermute shifts chain B's result right by one to align shard
// ids before the final addition.
func decomposeReduceScatterUnrolled(c *hlo.Computation, p Pattern) *hlo.Instruction {
	n := p.Ring.N
	x := p.Einsum.Operands[p.SliceSide]
	shard := x.Shape[p.SliceDim] / n
	left2 := p.Ring.ShiftPairs(-2)
	right1 := p.Ring.ShiftPairs(+1)

	accA := c.Zeros("", p.Collective.Shape)
	accB := c.Zeros("", p.Collective.Shape)
	defer c.SetBuildGroup(0)
	for j := 0; j < n/2; j++ {
		c.NewBuildGroup()
		sentA := c.CollectivePermute(accA, left2)
		pA := einsumWith(c, p, p.SliceSide, sliceX(c, p, 2*j+2, shard))
		accA = c.Add(sentA, pA)

		c.NewBuildGroup()
		sentB := c.CollectivePermute(accB, left2)
		pB := einsumWith(c, p, p.SliceSide, sliceX(c, p, 2*j+3, shard))
		accB = c.Add(sentB, pB)
	}
	aligned := c.CollectivePermute(accB, right1)
	return c.Add(accA, aligned)
}

// decomposeReduceScatterBidirectional emits the §5.4.2 variant (Fig
// 10): two accumulators travel in opposite directions — the
// counter-clockwise one holds shard (pos + i + 1 - N/2), the clockwise
// one shard (pos - i + N/2) — with each step computing both partials
// through a single einsum over the concatenated operand slices. The
// epilogue shifts the clockwise result one more step so both partial
// shards carry the device's own shard id, then adds them.
func decomposeReduceScatterBidirectional(c *hlo.Computation, p Pattern, opts Options) *hlo.Instruction {
	n := p.Ring.N
	x := p.Einsum.Operands[p.SliceSide]
	shard := x.Shape[p.SliceDim] / n
	left := p.Ring.ShiftPairs(-1)
	right := p.Ring.ShiftPairs(+1)

	accC := c.Zeros("", p.Collective.Shape)
	accW := c.Zeros("", p.Collective.Shape)
	defer c.SetBuildGroup(0)
	for i := 0; i < n/2; i++ {
		// One einsum per direction so each partial fuses with its own
		// accumulation (see the bidirectional AllGather note); the
		// per-step computation is still doubled.
		c.NewBuildGroup()
		sentC := c.CollectivePermute(maybeCopy(c, accC, opts), left)
		pC := einsumWith(c, p, p.SliceSide, sliceX(c, p, i+1-n/2, shard))
		accC = c.Add(sentC, pC)

		c.NewBuildGroup()
		sentW := c.CollectivePermute(maybeCopy(c, accW, opts), right)
		pW := einsumWith(c, p, p.SliceSide, sliceX(c, p, n/2-i, shard))
		accW = c.Add(sentW, pW)
	}
	aligned := c.CollectivePermute(accW, right)
	return c.Add(accC, aligned)
}

// sliceX dynamic-slices the scattered-label operand to the shard
// selected by ((pos + add) mod N).
func sliceX(c *hlo.Computation, p Pattern, add, shard int) *hlo.Instruction {
	x := p.Einsum.Operands[p.SliceSide]
	sizes := append([]int(nil), x.Shape...)
	sizes[p.SliceDim] = shard
	return c.DynamicSlice(x, staticOffsets(len(x.Shape), p.SliceDim, p.Ring.PosOffset(add, shard)), sizes)
}

// buildEinsum rebuilds the pattern's einsum with the gathered-side and
// other-side values placed in operand order.
func buildEinsum(c *hlo.Computation, p Pattern, sideVal, otherVal *hlo.Instruction) *hlo.Instruction {
	side := p.Side
	if p.Kind == EinsumReduceScatter {
		side = p.SliceSide
	}
	if side == 0 {
		return c.Einsum(p.Einsum.EinsumSpec, sideVal, otherVal)
	}
	return c.Einsum(p.Einsum.EinsumSpec, otherVal, sideVal)
}
