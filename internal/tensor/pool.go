package tensor

import (
	"math/bits"
	"sync"
)

// Size-keyed scratch-buffer pool for the kernel engine. Packed-operand
// and packed-accumulator buffers are transient — alive only for one
// kernel execution — so recycling them keeps the decomposed loop's
// steady state free of per-step data-sized allocations. Buffers are
// binned by power-of-two capacity; a returned buffer serves any later
// request of its class. Contents are not zeroed on reuse: getBuf is for
// scratch that a kernel path fully overwrites before reading (packed
// operands), while accumulator scratch — anything a kernel adds into
// without first storing — must come from getZeroBuf, which clears the
// requested prefix. A recycled buffer's tail beyond the request is
// never guaranteed zero (the pool hands back the larger of its class),
// so no call site may rely on it.

const numBufClasses = 40

var bufClasses [numBufClasses]sync.Pool

// bufClass returns the pool bin for a buffer of n float64s: the
// smallest c with 1<<c >= n.
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getBuf returns a length-n scratch buffer, reusing a pooled one when
// the size class has any. The pointer form keeps sync.Pool round trips
// allocation-free.
func getBuf(n int) *[]float64 {
	c := bufClass(n)
	if v := bufClasses[c].Get(); v != nil {
		p := v.(*[]float64)
		*p = (*p)[:n]
		kernelPoolReusedBytes.Add(float64(8 * n))
		return p
	}
	s := make([]float64, 1<<c)
	s = s[:n]
	kernelPoolFreshBytes.Add(float64(8 * n))
	return &s
}

// getZeroBuf returns a length-n scratch buffer with every element
// guaranteed zero. Fresh pool misses are already zeroed by make;
// recycled buffers carry whatever the previous kernel left, including
// in the oversized tail the pool rounds capacities up to, so the
// requested prefix is cleared explicitly. Split-K private accumulators
// depend on this: they are combined into the output without being
// fully stored first.
func getZeroBuf(n int) *[]float64 {
	c := bufClass(n)
	if v := bufClasses[c].Get(); v != nil {
		p := v.(*[]float64)
		*p = (*p)[:n]
		s := *p
		for i := range s {
			s[i] = 0
		}
		kernelPoolReusedBytes.Add(float64(8 * n))
		return p
	}
	s := make([]float64, 1<<c)
	s = s[:n]
	kernelPoolFreshBytes.Add(float64(8 * n))
	return &s
}

// putBuf recycles a buffer obtained from getBuf.
func putBuf(p *[]float64) {
	c := cap(*p)
	if c == 0 || c&(c-1) != 0 {
		return // only exact power-of-two capacities are pool-shaped
	}
	*p = (*p)[:c]
	bufClasses[bufClass(c)].Put(p)
}
