package runtime_test

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// wallClockCase builds the AllGather/einsum site the wall-clock
// comparison runs: shards big enough that partial einsums take real CPU
// time, wire delays scaled so a transfer dwarfs one device's compute —
// the regime where hiding communication behind computation pays.
func wallClockCase(n int) (build func() *hlo.Computation, args [][]*tensor.Tensor) {
	const m, k, nn = 24, 64, 64 // per-shard sizes
	groups := topology.NewRing(n).AxisGroups(0)
	build = func() *hlo.Computation {
		c := hlo.NewComputation("wall")
		a := c.Parameter(0, "a", []int{m, k})
		b := c.Parameter(1, "b", []int{k, nn})
		full := c.AllGather(a, 0, groups)
		c.Einsum("mk,kn->mn", full, b)
		return c
	}
	rng := rand.New(rand.NewSource(17))
	shards := make([]*tensor.Tensor, n)
	for d := range shards {
		shards[d] = tensor.Rand(rng, m, k)
	}
	args = [][]*tensor.Tensor{shards, {tensor.Rand(rng, k, nn)}}
	return build, args
}

// wallClockOptions scales the modeled ~1µs shard transfer into a ~30ms
// link occupancy: long enough that scheduling noise and race-detector
// compute inflation cannot blur the rolled-vs-decomposed gap.
func wallClockOptions() runtime.Options {
	return runtime.Options{Spec: machine.TPUv4(), TimeScale: 30000}
}

func runWallClock(t testing.TB, build func() *hlo.Computation, args [][]*tensor.Tensor, n int, opts core.Options) *runtime.Result {
	c := build()
	report, err := core.Apply(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.SitesDecomposed == 0 {
		t.Fatal("pipeline decomposed nothing")
	}
	res, err := runtime.Run(c, n, args, wallClockOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func rolledOptions() core.Options {
	return core.Options{Spec: machine.TPUv4(), Rolled: true, UseCostModel: false, Scheduler: core.SchedulerNone}
}

func decomposedOptions() core.Options {
	return core.Options{
		Spec:                  machine.TPUv4(),
		UseCostModel:          false,
		Scheduler:             core.SchedulerBottomUp,
		FuseAddIntoEinsum:     true,
		OverlapFriendlyFusion: true,
	}
}

// TestDecomposedBeatsRolledWallClock is the tentpole's acceptance
// check, measured rather than simulated: on 4 goroutine devices with
// injected wire delays, the decomposed + bottom-up-scheduled program
// must finish materially faster in wall-clock than the rolled blocking
// loop, because its transfers ride the links while the partial einsums
// run. Both runs compute identical tensors (cross-checked against the
// interpreter).
func TestDecomposedBeatsRolledWallClock(t *testing.T) {
	const n, repeats = 4, 2
	build, args := wallClockCase(n)

	ref, err := sim.Interpret(build(), n, args)
	if err != nil {
		t.Fatal(err)
	}

	rolled, decomposed := 0.0, 0.0
	for r := 0; r < repeats; r++ {
		rr := runWallClock(t, build, args, n, rolledOptions())
		dr := runWallClock(t, build, args, n, decomposedOptions())
		for d := 0; d < n; d++ {
			if !rr.Values[d].AllClose(ref[d], 1e-9) || !dr.Values[d].AllClose(ref[d], 1e-9) {
				t.Fatalf("wall-clock programs diverge from baseline on device %d", d)
			}
		}
		if r == 0 || rr.Breakdown.StepTime < rolled {
			rolled = rr.Breakdown.StepTime
		}
		if r == 0 || dr.Breakdown.StepTime < decomposed {
			decomposed = dr.Breakdown.StepTime
		}
	}
	t.Logf("rolled %.1fms, decomposed %.1fms (%.2fx)",
		rolled*1e3, decomposed*1e3, rolled/decomposed)
	if decomposed >= rolled*0.95 {
		t.Fatalf("decomposed (%.1fms) did not beat rolled (%.1fms) by 5%%",
			decomposed*1e3, rolled*1e3)
	}
}
