package experiments

import (
	"fmt"

	"overlap/internal/machine"
)

// Structured is the machine-readable form of one experiment run: the
// rendered text plus whatever numeric series the experiment produced,
// so benchmark trajectories can be tracked across revisions without
// scraping tables.
type Structured struct {
	// Experiment is the runner id (see IDs).
	Experiment string `json:"experiment"`
	// Speedups holds the experiment's headline series where one exists:
	// per-model baseline/overlapped step-time ratios for the evaluation
	// figures, ablation ratios for Figures 14-16.
	Speedups []float64 `json:"speedups,omitempty"`
	// Models names the rows Speedups is indexed by, when model-indexed.
	Models []string `json:"models,omitempty"`
	// Text is the human-readable report, identical to the non-JSON
	// output.
	Text string `json:"text"`
}

// IDs lists the experiments RunStructured accepts, in presentation
// order.
func IDs() []string {
	return []string{
		"table1", "table2", "fig1", "fig12", "fig13", "fig14", "fig15", "fig16",
		"energy", "inference",
		// Extensions beyond the paper's evaluation section.
		"memory", "rolled", "inference-sweep", "pipeline", "gpu", "wallclock", "transport",
	}
}

// RunStructured regenerates one experiment and returns both its textual
// report and its numeric series.
func RunStructured(id string, spec machine.Spec) (Structured, error) {
	s := Structured{Experiment: id}
	speedups := func(comps []Comparison) {
		for _, c := range comps {
			s.Speedups = append(s.Speedups, c.Speedup())
			s.Models = append(s.Models, c.Baseline.Config.Name)
		}
	}
	var err error
	switch id {
	case "table1":
		s.Text = Table1()
	case "table2":
		s.Text = Table2()
	case "fig1":
		s.Text, err = Fig1(spec)
	case "fig12":
		var comps []Comparison
		s.Text, comps, err = Fig12(spec)
		speedups(comps)
	case "fig13":
		var comps []Comparison
		s.Text, comps, err = Fig13(spec)
		speedups(comps)
	case "fig14":
		s.Text, s.Speedups, err = Fig14(spec)
	case "fig15":
		s.Text, s.Speedups, err = Fig15(spec)
	case "fig16":
		s.Text, s.Speedups, err = Fig16(spec)
	case "energy":
		s.Text, err = Energy(spec)
	case "inference":
		var comp Comparison
		s.Text, comp, err = Inference(spec)
		if err == nil {
			s.Speedups = []float64{comp.Speedup()}
		}
	case "memory":
		s.Text, err = Memory(spec)
	case "rolled":
		s.Text, err = Rolled(spec)
	case "inference-sweep":
		s.Text, err = InferenceSweep(spec)
	case "pipeline":
		s.Text, err = Pipeline(spec)
	case "gpu":
		s.Text, err = GPU(spec)
	case "wallclock":
		s.Text, s.Speedups, err = Wallclock(spec)
	case "transport":
		s.Text, s.Speedups, err = Transport(spec)
	default:
		return s, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, IDs())
	}
	if err != nil {
		return Structured{}, err
	}
	return s, nil
}
