// Package tensor implements the dense tensor arithmetic that the rest of
// the reproduction builds on: shapes, general Einstein summation, slicing,
// padding, concatenation and element-wise math.
//
// The package is a correctness substrate first: all values are stored
// as float64 in row-major order so that the functional SPMD interpreter
// (internal/sim) can prove rewrites semantically equivalent; timing
// comes from the analytic machine model instead. Einsums nevertheless
// execute through a real kernel engine (kernel.go): two-operand specs
// lower to a cache-blocked batched GEMM with optional intra-op
// parallelism (SetKernelWorkers), constrained to produce bytes
// identical to the scalar reference path — speed without giving up the
// executors' bit-identical cross-checks.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
)

// Tensor is a dense, row-major n-dimensional array of float64 values.
// The zero value is a scalar-shaped empty tensor; use New or the factory
// helpers to construct usable tensors.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64

	// version counts observed mutations of data after construction. The
	// kernel engine's pack cache keys packed-operand artifacts by
	// (tensor identity, version), so every path that can write data —
	// Set, the live slice handed out by Data, in-place accumulation —
	// must bump it; a stale version on lookup forces a repack. Atomic
	// because concurrent device goroutines may call Data on a shared
	// replicated tensor.
	version atomic.Uint64
}

// New returns a zero-filled tensor of the given shape. A nil or empty
// shape produces a scalar (rank 0, one element). New panics if any
// dimension is negative: shapes are produced by compiler code, so a bad
// shape is a programming error, not an input error.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	t := &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    make([]float64, n),
	}
	return t
}

// FromValues returns a tensor of the given shape initialized with the
// provided values. It panics if len(values) does not match the shape.
func FromValues(shape []int, values []float64) *Tensor {
	t := New(shape...)
	if len(values) != len(t.data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d values, got %d", shape, len(t.data), len(values)))
	}
	copy(t.data, values)
	return t
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// Rand returns a tensor of the given shape filled with uniform values in
// [-1, 1) drawn from rng. Deterministic for a seeded rng, which keeps the
// property-based equivalence tests reproducible.
func Rand(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Float64()*2 - 1
	}
	return t
}

// Iota returns a tensor of the given shape whose elements are
// 0, 1, 2, ... in row-major order. Useful for tests where every element
// must be distinguishable.
func Iota(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float64(i)
	}
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Data returns the underlying row-major element slice. The slice is the
// live backing store, not a copy; mutating it mutates the tensor. The
// engine must assume the caller will write through it, so handing the
// slice out counts as a mutation for pack-cache invalidation.
func (t *Tensor) Data() []float64 {
	t.noteMutation()
	return t.data
}

// Version returns the tensor's mutation counter (see the field comment);
// cached derivations of the contents are valid only while it is stable.
func (t *Tensor) Version() uint64 { return t.version.Load() }

// noteMutation records that data was (or may be about to be) written.
func (t *Tensor) noteMutation() { t.version.Add(1) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(index ...int) float64 {
	return t.data[t.offset(index)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, index ...int) {
	t.data[t.offset(index)] = v
	t.noteMutation()
}

func (t *Tensor) offset(index []int) int {
	if len(index) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(index), t.shape))
	}
	off := 0
	for i, ix := range index {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", index, t.shape))
		}
		off += ix * t.strides[i]
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether t and o have the same shape and bitwise-equal
// elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have the same shape and element-wise
// values within the given absolute-plus-relative tolerance:
// |a-b| <= tol * (1 + max(|a|, |b|)). Decomposed einsums reassociate
// floating-point additions, so equivalence checks must tolerate rounding.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	return t.MaxDifference(o) <= tol
}

// MaxDifference returns the maximum normalized element-wise difference
// between t and o, or +Inf if the shapes differ.
func (t *Tensor) MaxDifference(o *Tensor) float64 {
	if !t.SameShape(o) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range t.data {
		a, b := t.data[i], o.data[i]
		scale := 1 + math.Max(math.Abs(a), math.Abs(b))
		if d := math.Abs(a-b) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// String renders the tensor's shape and, for small tensors, its values.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	}
	return b.String()
}

// indexIterator walks a multi-dimensional index space in row-major order.
// next reports false once the space is exhausted. A zero-size space yields
// no indices.
type indexIterator struct {
	shape []int
	index []int
	done  bool
}

func newIndexIterator(shape []int) *indexIterator {
	it := &indexIterator{shape: shape, index: make([]int, len(shape))}
	for _, d := range shape {
		if d == 0 {
			it.done = true
		}
	}
	return it
}

// next advances to the following index. The returned slice is reused
// between calls; callers must not retain it.
func (it *indexIterator) next() ([]int, bool) {
	if it.done {
		return nil, false
	}
	cur := it.index
	// Pre-compute the successor for the next call.
	out := append([]int(nil), cur...)
	for i := len(it.index) - 1; i >= 0; i-- {
		it.index[i]++
		if it.index[i] < it.shape[i] {
			return out, true
		}
		it.index[i] = 0
	}
	it.done = true
	return out, true
}
