package hlo

import "testing"

func TestPeakMemorySimpleChain(t *testing.T) {
	c := NewComputation("chain")
	a := c.Parameter(0, "a", []int{256}) // 1 KiB
	b := c.Copy(a)                       // +1 KiB
	d := c.Copy(b)                       // b dies after this
	c.Copy(d)
	stats := PeakMemory(c)
	// Peak: parameter + two intermediate copies live at once = 3 KiB.
	if stats.PeakBytes != 3*1024 {
		t.Fatalf("PeakBytes = %d, want %d", stats.PeakBytes, 3*1024)
	}
	if stats.ParameterBytes != 1024 {
		t.Fatalf("ParameterBytes = %d", stats.ParameterBytes)
	}
}

func TestPeakMemoryReshapeAndTupleAreFree(t *testing.T) {
	c := NewComputation("free")
	a := c.Parameter(0, "a", []int{256})
	r := c.Reshape(a, 16, 16)
	c.Tuple(r)
	stats := PeakMemory(c)
	if stats.PeakBytes != 1024 {
		t.Fatalf("PeakBytes = %d, want 1024 (reshape/tuple must be free)", stats.PeakBytes)
	}
}

func TestPeakMemoryInPlaceUpdate(t *testing.T) {
	// An accumulation chain of DynamicUpdateSlices must not allocate a
	// fresh buffer per step.
	c := NewComputation("dus")
	upd := c.Parameter(0, "u", []int{64}) // 256 B
	base := c.Zeros("base", []int{256})   // 1 KiB
	cur := base
	for i := 0; i < 4; i++ {
		cur = c.DynamicUpdateSlice(cur, upd, []DynOffset{Static(i * 64)})
	}
	stats := PeakMemory(c)
	want := int64(256 + 1024) // parameter + single result buffer
	if stats.PeakBytes != want {
		t.Fatalf("PeakBytes = %d, want %d (in-place chain)", stats.PeakBytes, want)
	}
}

func TestPeakMemorySharedBaseAllocates(t *testing.T) {
	// If the base is used again later, the update cannot be in place.
	c := NewComputation("dus2")
	upd := c.Parameter(0, "u", []int{64})
	base := c.Zeros("base", []int{256})
	dus := c.DynamicUpdateSlice(base, upd, []DynOffset{Static(0)})
	c.Tuple(dus, base) // base survives the update
	stats := PeakMemory(c)
	want := int64(256 + 1024 + 1024)
	if stats.PeakBytes != want {
		t.Fatalf("PeakBytes = %d, want %d (copy-on-write)", stats.PeakBytes, want)
	}
}

func TestPeakMemoryAsyncPairAliases(t *testing.T) {
	c := NewComputation("async")
	a := c.Parameter(0, "a", []int{256})
	pairs := []SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}}
	start := c.CollectivePermuteStart(a, pairs)
	done := c.CollectivePermuteDone(start)
	c.Copy(done)
	stats := PeakMemory(c)
	// Parameter + receive buffer + final copy.
	want := int64(1024 + 1024 + 1024)
	if stats.PeakBytes != want {
		t.Fatalf("PeakBytes = %d, want %d", stats.PeakBytes, want)
	}
}

func TestPeakMemoryLoopCountsBodyPeak(t *testing.T) {
	body := NewComputation("body")
	p := body.Parameter(0, "p", []int{256})
	q := body.Copy(p)
	body.Tuple(body.Copy(q))

	c := NewComputation("outer")
	x := c.Parameter(0, "x", []int{256})
	c.Loop(body, 3, 0, x)
	stats := PeakMemory(c)
	if stats.PeakBytes <= 1024 {
		t.Fatalf("PeakBytes = %d, loop body peak not accounted", stats.PeakBytes)
	}
}

func TestPeakMemoryScheduleSensitivity(t *testing.T) {
	// Two schedules of the same graph: computing consumers eagerly
	// (depth-first) keeps fewer temporaries live than computing all
	// producers first.
	build := func(eager bool) *Computation {
		c := NewComputation("sched")
		a := c.Parameter(0, "a", []int{256})
		if eager {
			x := c.Copy(a)
			x2 := c.Copy(x)
			y := c.Copy(a)
			y2 := c.Copy(y)
			c.Tuple(x2, y2)
		} else {
			x := c.Copy(a)
			y := c.Copy(a)
			x2 := c.Copy(x)
			y2 := c.Copy(y)
			c.Tuple(x2, y2)
		}
		return c
	}
	eager := PeakMemory(build(true))
	wide := PeakMemory(build(false))
	if eager.PeakBytes > wide.PeakBytes {
		t.Fatalf("eager schedule %d > wide schedule %d", eager.PeakBytes, wide.PeakBytes)
	}
}
