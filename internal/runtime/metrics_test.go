package runtime

import (
	"math/rand"
	"testing"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/obs"
	"overlap/internal/tensor"
	"overlap/internal/topology"
)

// TestRunRecordsMetrics checks the runtime's reporting path: one Run
// must bump the shared instruction counter, post transfer counts from
// the link fabric, and publish its measured breakdown gauges.
func TestRunRecordsMetrics(t *testing.T) {
	const n = 4
	c := hlo.NewComputation("metrics")
	groups := topology.NewRing(n).AxisGroups(0)
	a := c.Parameter(0, "a", []int{8, 16})
	w := c.Parameter(1, "w", []int{16, 8})
	full := c.AllGather(a, 0, groups)
	c.Einsum("mk,kn->mn", full, w)
	opts := core.DefaultOptions(machine.TPUv4())
	opts.UseCostModel = false
	if _, err := core.Apply(c, opts); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	shards := make([]*tensor.Tensor, n)
	for d := range shards {
		shards[d] = tensor.Rand(rng, 8, 16)
	}
	args := [][]*tensor.Tensor{shards, {tensor.Rand(rng, 16, 8)}}

	r := obs.Default()
	runs := r.Counter("overlap_runtime_runs_total", "")
	instrs := r.Counter("overlap_runtime_instructions_total", "")
	transfers := r.Counter("overlap_runtime_transfers_total", "")
	bytesMoved := r.Counter("overlap_runtime_transfer_bytes_total", "")
	lastStep := r.Gauge("overlap_runtime_last_step_seconds", "")

	runs0, instrs0, transfers0, bytes0 := runs.Value(), instrs.Value(), transfers.Value(), bytesMoved.Value()
	res, err := Run(c, n, args, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Value() - runs0; got != 1 {
		t.Fatalf("run counter moved by %v, want 1", got)
	}
	if instrs.Value() <= instrs0 {
		t.Fatal("instruction counter did not move")
	}
	if transfers.Value() <= transfers0 || bytesMoved.Value() <= bytes0 {
		t.Fatal("transfer counters did not move for a decomposed program")
	}
	if lastStep.Value() != res.Breakdown.StepTime {
		t.Fatalf("last step gauge = %v, want %v", lastStep.Value(), res.Breakdown.StepTime)
	}
}
