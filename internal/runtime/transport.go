package runtime

import (
	"time"

	"overlap/internal/sim"
)

// TransportKind selects the fabric implementation a run's transfers
// move over.
type TransportKind string

const (
	// TransportChan is the in-process fabric: one buffered Go channel
	// per directed edge, serviced by a link goroutine that imposes the
	// modeled wire time. The zero value of Options.Transport resolves
	// here.
	TransportChan TransportKind = "chan"

	// TransportProc runs each communicating logical device as its own
	// spawned OS process: tensors leave the parent as length-prefixed
	// binary frames, cross a Unix socket into the source device's
	// worker, sleep the modeled wire time there, cross a second socket
	// to the destination device's worker, and come back up to the
	// parent for delivery. Link faults (drop/dup/delay) act inside the
	// workers — below the mailbox layer, on the real sockets.
	TransportProc TransportKind = "proc"
)

// ParseTransport maps a CLI/API string onto a TransportKind; the empty
// string is the channel transport.
func ParseTransport(s string) (TransportKind, error) {
	switch TransportKind(s) {
	case "", TransportChan:
		return TransportChan, nil
	case TransportProc:
		return TransportProc, nil
	}
	return "", formatErr("unknown transport %q (want %q or %q)", s, TransportChan, TransportProc)
}

// transport is the movement half of the fabric: it carries one posted
// parcel from its source device to the destination mailbox, imposing
// the modeled wire time and acting out the run's link faults on the
// way. Everything above it — mailbox addressing, at-most-once
// enforcement, watermark pruning, the missing-link check — stays in
// the fabric, shared by every implementation, which is what keeps the
// bitwise cross-check against sim.Interpret transport-independent.
type transport interface {
	// start brings the data plane up for the program's directed edges.
	// Called once, before any device goroutine runs; an error fails
	// the run before it starts.
	start(edges [][2]int) error

	// post hands one parcel to the edge's wire without waiting for it.
	// It may block while the edge's queue is full but must return
	// false instead of blocking forever once the run aborts.
	post(src, dst int, p parcel) bool

	// shutdown tears the data plane down — goroutines joined, worker
	// processes reaped — after every device goroutine has returned.
	shutdown()

	// traceEvents returns the transfer-layer spans recorded during the
	// run. Only called after shutdown, when nothing appends.
	traceEvents() []sim.TraceEvent
}

// newTransport constructs the configured transport for one engine.
func newTransport(e *engine, f *fabric) (transport, error) {
	switch e.opts.Transport {
	case "", TransportChan:
		return newChanTransport(e, f), nil
	case TransportProc:
		return newProcTransportChecked(e, f)
	}
	return nil, formatErr("unknown transport %q", e.opts.Transport)
}

// faultActions resolves the injector's decision for the k-th parcel on
// one edge: whether to drop it, duplicate it, and how much extra wire
// delay to add (nanoseconds). The decision (and its telemetry) is made
// exactly once per parcel, in the parent, from the run's seeded plan —
// transports only act it out, which keeps fault sequences and their
// attribution identical across transports and across runs.
func (e *engine) faultActions(lf *linkFaults, instr string) (drop bool, dup *Fault, extra int64) {
	if lf == nil {
		return false, nil, 0
	}
	k := lf.next()
	if flt, ok := lf.drops[k]; ok {
		e.inj.record(flt, instr)
		rtFaultDrops.Inc()
		return true, nil, 0
	}
	for _, flt := range lf.delays {
		if flt.K >= 0 && flt.K != k {
			continue
		}
		add := flt.Delay
		if flt.Jitter > 0 {
			add += time.Duration(lf.rng.Float64() * float64(flt.Jitter))
		}
		extra += add.Nanoseconds()
		e.inj.record(flt, instr)
		rtFaultDelays.Inc()
	}
	if flt, ok := lf.dups[k]; ok {
		flt := flt
		e.inj.record(flt, instr)
		rtFaultDuplicates.Inc()
		dup = &flt
	}
	return false, dup, extra
}
