package core

import (
	"math/rand"
	"testing"

	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/sim"
)

// TestSchedulingPreservesLiveness checks the §5.2 design constraint: the
// overlap schedulers take a memory-reasonable input order and must not
// blow up buffer liveness. We allow a modest growth factor — start/done
// windows necessarily keep receive buffers alive longer.
func TestSchedulingPreservesLiveness(t *testing.T) {
	const n = 8
	for _, sched := range []SchedulerKind{SchedulerBottomUp, SchedulerTopDown} {
		unscheduled := bigSite(n)
		if _, err := Apply(unscheduled, forceOpts(true, true, SchedulerNone, true)); err != nil {
			t.Fatal(err)
		}
		before := hlo.PeakMemory(unscheduled)

		scheduled := bigSite(n)
		opts := forceOpts(true, true, sched, true)
		if _, err := Apply(scheduled, opts); err != nil {
			t.Fatal(err)
		}
		after := hlo.PeakMemory(scheduled)

		if after.PeakBytes > 2*before.PeakBytes {
			t.Fatalf("%v: scheduling grew peak memory %d -> %d (more than 2x)",
				sched, before.PeakBytes, after.PeakBytes)
		}
	}
}

// TestUnrollingTradesMemoryForCopies: the §5.4.1 unrolled
// Einsum-ReduceScatter keeps two interleaved accumulation buffers alive
// (double buffering), so its peak memory must not be lower than the
// naive rolled-style chain, which instead pays per-iteration copies.
func TestUnrollingTradesMemoryForCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	build := func(unroll bool) *hlo.Computation {
		tc := makeSite(siteRS, ringGroups(8), 8, rng)
		c := tc.build()
		if _, err := Apply(c, forceOpts(unroll, false, SchedulerNone, false)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	naive := hlo.PeakMemory(build(false))
	unrolled := hlo.PeakMemory(build(true))
	if unrolled.PeakBytes < naive.PeakBytes {
		t.Fatalf("unrolled peak %d below naive %d; double buffering missing",
			unrolled.PeakBytes, naive.PeakBytes)
	}
	// And the copies must be gone (checked structurally elsewhere) while
	// memory stays within a small constant of the naive form.
	if unrolled.PeakBytes > 3*naive.PeakBytes {
		t.Fatalf("unrolled peak %d more than 3x naive %d", unrolled.PeakBytes, naive.PeakBytes)
	}
}

// TestFormatParseRoundTripDecomposed: a fully decomposed, fused and
// scheduled program survives the text round trip with identical
// simulated behaviour.
func TestFormatParseRoundTripDecomposed(t *testing.T) {
	const n = 8
	spec := machine.TPUv4()
	c := bigSite(n)
	if _, err := Apply(c, forceOpts(true, true, SchedulerBottomUp, true)); err != nil {
		t.Fatal(err)
	}
	text := c.Format()
	parsed, err := hlo.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := parsed.Verify(); err != nil {
		t.Fatal(err)
	}
	if parsed.Format() != text {
		t.Fatal("round trip text differs")
	}
	origBd, err := sim.Simulate(c, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	parsedBd, err := sim.Simulate(parsed, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if origBd.StepTime != parsedBd.StepTime {
		t.Fatalf("parsed program simulates differently: %v vs %v", parsedBd.StepTime, origBd.StepTime)
	}
}

// TestRolledRoundTrip: the loop form also survives the text round trip.
func TestRolledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tc := makeSite(siteAGNonContracting, ringGroups(4), 4, rng)
	c := tc.build()
	if _, err := Apply(c, rolledOpts()); err != nil {
		t.Fatal(err)
	}
	text := c.Format()
	parsed, err := hlo.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if parsed.Format() != text {
		t.Fatal("rolled round trip text differs")
	}
	// The parsed program must still compute the right values.
	ref, err := sim.Interpret(c, tc.n, tc.args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Interpret(parsed, tc.n, tc.args)
	if err != nil {
		t.Fatal(err)
	}
	for d := range ref {
		if !got[d].AllClose(ref[d], 1e-12) {
			t.Fatalf("parsed rolled program diverges on device %d", d)
		}
	}
}
