package autotune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadCacheCorruptCounted pins the degradation contract: a cache
// file that fails to parse loads as empty (cold tune, never an error)
// and bumps the corruption counter so the poisoning shows up in
// telemetry. A version mismatch is a deliberate invalidation, not rot,
// and must load cold without touching the counter.
func TestLoadCacheCorruptCounted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "autotune.json")

	before := atCacheCorrupt.Value()
	if f := loadCache(path); len(f.Entries) != 0 {
		t.Fatalf("missing file loaded %d entries", len(f.Entries))
	}
	if atCacheCorrupt.Value() != before {
		t.Fatal("a missing cache file was counted as corrupt")
	}

	for _, junk := range []string{"{not json", `"a bare string"`, `{"version":2}`} {
		if err := os.WriteFile(path, []byte(junk), 0o644); err != nil {
			t.Fatal(err)
		}
		before = atCacheCorrupt.Value()
		f := loadCache(path)
		if len(f.Entries) != 0 {
			t.Fatalf("corrupt cache %q loaded %d entries", junk, len(f.Entries))
		}
		if f.Version != cacheVersion {
			t.Fatalf("corrupt cache %q did not reset to version %d", junk, cacheVersion)
		}
		if atCacheCorrupt.Value() != before+1 {
			t.Fatalf("corrupt cache %q did not bump the corruption counter", junk)
		}
	}

	stale := cacheFile{Version: cacheVersion - 1, Entries: map[string]cacheEntry{"k": {}}}
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	before = atCacheCorrupt.Value()
	if f := loadCache(path); len(f.Entries) != 0 {
		t.Fatal("version-mismatched cache returned entries")
	}
	if atCacheCorrupt.Value() != before {
		t.Fatal("a version mismatch was counted as corruption")
	}
}

// TestWriteFileAtomic pins the crash-safe replace: the write goes
// through a temp file and a rename, overwrites whatever was there
// (including a torn file), and leaves no temp droppings behind on
// either the success or the failure path.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "autotune.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	want := []byte(`{"version":2,"entries":{}}`)
	if err := writeFileAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	var parsed cacheFile
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("replaced file is not valid JSON: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after a successful write", e.Name())
		}
	}

	// Failure path: a directory that does not exist must error without
	// dropping a temp file anywhere visible.
	if err := writeFileAtomic(filepath.Join(dir, "missing", "autotune.json"), want); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after a failed write", e.Name())
		}
	}
}
