// Package machine models the accelerator hardware that the timing
// simulator and the paper's cost model (§5.5) estimate against: per-chip
// compute throughput with a roofline memory term, and the inter-chip
// interconnect (ICI) links of a ring/mesh/torus.
//
// The defaults approximate a TPU v4 chip. Absolute numbers are not the
// reproduction target — the *ratios* between compute and communication
// times are, and those are set by FLOP/s-to-link-bandwidth proportions
// that the defaults preserve.
package machine

import (
	"fmt"
	"math"

	"overlap/internal/hlo"
	"overlap/internal/tensor"
)

// Spec describes one accelerator chip and its interconnect attachment.
type Spec struct {
	Name string

	// PeakFLOPS is the chip's peak matrix-unit throughput in FLOP/s.
	PeakFLOPS float64
	// MatmulEfficiency is the fraction of peak a large, well-shaped
	// einsum achieves (compiler + pipeline losses).
	MatmulEfficiency float64
	// EfficiencyKnee is the einsum dimension size at which the matrix
	// unit reaches half its asymptotic efficiency; small post-partition
	// dimensions fall down this curve (the effect §2.2 cites as the
	// reason for 2D partitioning).
	EfficiencyKnee float64
	// HBMBandwidth is the chip's main-memory bandwidth in bytes/s; it
	// bounds element-wise and data-movement ops (roofline).
	HBMBandwidth float64

	// LinkBandwidth is the ICI bandwidth of one link in one direction,
	// bytes/s. Every torus axis provides one such link per direction per
	// neighbor.
	LinkBandwidth float64
	// LinkLatency is the per-hop transfer setup latency in seconds.
	LinkLatency float64

	// OpOverhead is the fixed per-instruction issue overhead in seconds.
	OpOverhead float64
	// MaxInFlight bounds concurrently outstanding asynchronous
	// collectives (the limited synchronization flags of §5.2).
	MaxInFlight int
}

// TPUv4 returns a TPU v4-like chip specification.
//
// The IR prices tensors at 4 bytes per element, but TPU training runs in
// bf16 (2 bytes); the memory and link bandwidths below are therefore
// doubled from their physical values (~1.2 TB/s HBM, ~45 GB/s per link
// direction) so that byte-count/bandwidth ratios match bf16 execution.
func TPUv4() Spec {
	return Spec{
		Name:             "tpu-v4",
		PeakFLOPS:        275e12, // bf16 MXU peak
		MatmulEfficiency: 0.88,
		EfficiencyKnee:   32, // near-full efficiency from ~256 elements up
		HBMBandwidth:     2.4e12,
		LinkBandwidth:    90e9,
		LinkLatency:      1e-6,
		OpOverhead:       0.8e-6,
		MaxInFlight:      8,
	}
}

// GPUCluster returns an A100-like GPU node specification for the §7.2
// generalization study: higher per-direction link bandwidth inside an
// NVLink island but a lower FLOP-to-bandwidth ratio than a TPU pod, so
// the overlap technique helps for the same reason with different
// crossover points. Bandwidths are doubled like TPUv4's (bf16 data on a
// 4-byte-element IR).
func GPUCluster() Spec {
	return Spec{
		Name:             "gpu-a100",
		PeakFLOPS:        312e12, // bf16 tensor-core peak
		MatmulEfficiency: 0.80,
		EfficiencyKnee:   48,
		HBMBandwidth:     4.0e12, // ~2 TB/s HBM2e, doubled
		LinkBandwidth:    250e9,  // NVLink-class per direction, doubled
		LinkLatency:      3e-6,   // kernel-launch/NCCL hop setup
		OpOverhead:       3e-6,
		MaxInFlight:      8,
	}
}

// Validate reports configuration errors: non-positive rates, negative
// latencies and overheads, and non-finite values — any of which would
// leak NaN/Inf (or negative times) into the cost model and simulator.
func (s Spec) Validate() error {
	finite := func(what string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("machine: %s %s %v is not finite", s.Name, what, v)
		}
		return nil
	}
	for _, f := range []struct {
		what string
		val  float64
	}{
		{"peak FLOP/s", s.PeakFLOPS},
		{"matmul efficiency", s.MatmulEfficiency},
		{"efficiency knee", s.EfficiencyKnee},
		{"HBM bandwidth", s.HBMBandwidth},
		{"link bandwidth", s.LinkBandwidth},
		{"link latency", s.LinkLatency},
		{"op overhead", s.OpOverhead},
	} {
		if err := finite(f.what, f.val); err != nil {
			return err
		}
	}
	if s.PeakFLOPS <= 0 {
		return fmt.Errorf("machine: %s peak FLOP/s %v must be positive", s.Name, s.PeakFLOPS)
	}
	if s.HBMBandwidth <= 0 {
		return fmt.Errorf("machine: %s HBM bandwidth %v must be positive", s.Name, s.HBMBandwidth)
	}
	if s.LinkBandwidth <= 0 {
		return fmt.Errorf("machine: %s link bandwidth %v must be positive", s.Name, s.LinkBandwidth)
	}
	if s.MatmulEfficiency <= 0 || s.MatmulEfficiency > 1 {
		return fmt.Errorf("machine: %s matmul efficiency %v outside (0,1]", s.Name, s.MatmulEfficiency)
	}
	if s.EfficiencyKnee < 0 {
		return fmt.Errorf("machine: %s efficiency knee %v must be non-negative", s.Name, s.EfficiencyKnee)
	}
	if s.LinkLatency < 0 {
		return fmt.Errorf("machine: %s link latency %v must be non-negative", s.Name, s.LinkLatency)
	}
	if s.OpOverhead < 0 {
		return fmt.Errorf("machine: %s op overhead %v must be non-negative", s.Name, s.OpOverhead)
	}
	if s.MaxInFlight <= 0 {
		return fmt.Errorf("machine: %s needs a positive async budget", s.Name)
	}
	return nil
}

// Fingerprint returns a stable textual identity of every parameter that
// influences modeled times, for keying tuned-decision caches: two specs
// with equal fingerprints price every program identically.
func (s Spec) Fingerprint() string {
	return fmt.Sprintf("name=%s flops=%g eff=%g knee=%g hbm=%g link=%g lat=%g ovh=%g inflight=%d",
		s.Name, s.PeakFLOPS, s.MatmulEfficiency, s.EfficiencyKnee,
		s.HBMBandwidth, s.LinkBandwidth, s.LinkLatency, s.OpOverhead, s.MaxInFlight)
}

// WithMatmulEfficiency returns a copy with the achieved-fraction-of-peak
// replaced, clamped into Validate's (0, 1] range.
func (s Spec) WithMatmulEfficiency(eff float64) Spec {
	if eff > 1 {
		eff = 1
	}
	if eff <= 0 || math.IsNaN(eff) {
		eff = 1e-6
	}
	s.MatmulEfficiency = eff
	return s
}

// WithLinkBandwidth returns a copy with the per-direction link bandwidth
// replaced; non-positive values are clamped to a minimal positive rate.
func (s Spec) WithLinkBandwidth(bw float64) Spec {
	if bw <= 0 || math.IsNaN(bw) {
		bw = 1
	}
	s.LinkBandwidth = bw
	return s
}

// WithOpOverhead returns a copy with the per-instruction issue overhead
// replaced; negative values are clamped to zero.
func (s Spec) WithOpOverhead(ovh float64) Spec {
	if ovh < 0 || math.IsNaN(ovh) {
		ovh = 0
	}
	s.OpOverhead = ovh
	return s
}

// Calibration rescales a Spec so that its modeled times track an
// observed execution: autotune fits these factors from measured runtime
// breakdowns (see internal/autotune). Each factor multiplies a
// *throughput*, so a factor below 1 makes the corresponding modeled time
// longer. The zero value is not a valid calibration; use Identity.
type Calibration struct {
	// ComputeScale multiplies the chip's effective compute throughput
	// (matmul units and HBM together).
	ComputeScale float64
	// WireScale multiplies the link bandwidth.
	WireScale float64
	// OverheadScale multiplies the per-instruction issue overhead (an
	// overhead is a time, so this one scales time directly).
	OverheadScale float64
}

// Identity returns the calibration that leaves a Spec unchanged.
func Identity() Calibration {
	return Calibration{ComputeScale: 1, WireScale: 1, OverheadScale: 1}
}

// Apply returns the spec rescaled by the calibration. Compute scaling
// raises MatmulEfficiency first and overflows into PeakFLOPS once the
// efficiency ceiling of 1 is reached, so the result always validates.
func (cal Calibration) Apply(s Spec) Spec {
	cs, ws, os := cal.ComputeScale, cal.WireScale, cal.OverheadScale
	clamp := func(v float64) float64 {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return v
	}
	cs, ws, os = clamp(cs), clamp(ws), clamp(os)

	eff := s.MatmulEfficiency * cs
	if eff > 1 {
		s.PeakFLOPS *= eff // overflow beyond the efficiency ceiling
		eff = 1
	}
	s = s.WithMatmulEfficiency(eff)
	s.HBMBandwidth *= cs
	s = s.WithLinkBandwidth(s.LinkBandwidth * ws)
	s = s.WithOpOverhead(s.OpOverhead * os)
	return s
}

// EinsumEfficiency returns the fraction of peak achieved by an einsum
// whose smallest participating dimension is minDim: the asymptotic
// MatmulEfficiency derated by a saturating knee curve.
func (s Spec) EinsumEfficiency(minDim int) float64 {
	if minDim <= 0 {
		return s.MatmulEfficiency
	}
	d := float64(minDim)
	return s.MatmulEfficiency * d / (d + s.EfficiencyKnee)
}

// EinsumTime returns the execution time of an einsum with the given FLOP
// count, memory traffic, and smallest dimension, as the roofline maximum
// of the compute and memory terms plus issue overhead.
func (s Spec) EinsumTime(flops, bytes int64, minDim int) float64 {
	compute := float64(flops) / (s.PeakFLOPS * s.EinsumEfficiency(minDim))
	memory := float64(bytes) / s.HBMBandwidth
	if memory > compute {
		compute = memory
	}
	return compute + s.OpOverhead
}

// MemoryTime returns the execution time of a memory-bound op touching
// the given number of bytes.
func (s Spec) MemoryTime(bytes int64) float64 {
	return float64(bytes)/s.HBMBandwidth + s.OpOverhead
}

// TransferTime returns the wire time of a point-to-point transfer of the
// given size across the given number of torus hops.
func (s Spec) TransferTime(bytes int64, hops int) float64 {
	if hops < 1 {
		hops = 1
	}
	return float64(hops)*s.LinkLatency + float64(bytes)/s.LinkBandwidth
}

// RingAllGatherTime returns the wire time of a bandwidth-optimal
// bidirectional-ring AllGather producing fullBytes on each of g devices:
// each device receives (g-1)/g of the result over two link directions.
func (s Spec) RingAllGatherTime(fullBytes int64, g int) float64 {
	if g <= 1 {
		return 0
	}
	recv := float64(fullBytes) * float64(g-1) / float64(g)
	return recv/(2*s.LinkBandwidth) + float64(g-1)*s.LinkLatency
}

// RingReduceScatterTime returns the wire time of a bidirectional-ring
// ReduceScatter over per-device inputs of inputBytes across g devices.
func (s Spec) RingReduceScatterTime(inputBytes int64, g int) float64 {
	if g <= 1 {
		return 0
	}
	sent := float64(inputBytes) * float64(g-1) / float64(g)
	return sent/(2*s.LinkBandwidth) + float64(g-1)*s.LinkLatency
}

// RingAllReduceTime returns the wire time of a ReduceScatter+AllGather
// AllReduce over per-device inputs of bytes across g devices.
func (s Spec) RingAllReduceTime(bytes int64, g int) float64 {
	return s.RingReduceScatterTime(bytes, g) + s.RingAllGatherTime(bytes, g)
}

// AllToAllTime returns the wire time of a ring AllToAll of per-device
// inputs of bytes across g devices: each device ships (g-1)/g of its
// data an average of g/4 hops in each direction.
func (s Spec) AllToAllTime(bytes int64, g int) float64 {
	if g <= 1 {
		return 0
	}
	sent := float64(bytes) * float64(g-1) / float64(g)
	return sent*float64(g)/(8*s.LinkBandwidth) + float64(g-1)*s.LinkLatency
}

// CollectiveTime returns the wire time of a blocking collective
// instruction, dispatching on its opcode. Non-collective instructions
// return 0.
func (s Spec) CollectiveTime(in *hlo.Instruction) float64 {
	g := 1
	if len(in.Groups) > 0 {
		g = len(in.Groups[0])
	}
	switch in.Op {
	case hlo.OpAllGather:
		return s.RingAllGatherTime(in.ByteSize(), g)
	case hlo.OpReduceScatter:
		return s.RingReduceScatterTime(in.Operands[0].ByteSize(), g)
	case hlo.OpAllReduce:
		return s.RingAllReduceTime(in.ByteSize(), g)
	case hlo.OpAllToAll:
		return s.AllToAllTime(in.ByteSize(), g)
	case hlo.OpCollectivePermute:
		return s.TransferTime(in.ByteSize(), 1)
	}
	return 0
}

// InstructionCost returns the local (on-chip) execution time of an
// instruction: einsums through the roofline, data-movement ops through
// the memory term, and free ops (parameters, constants, async starts)
// as zero. Collectives' wire time is modeled separately by the
// simulator; their local cost here is only issue overhead.
func (s Spec) InstructionCost(in *hlo.Instruction) float64 {
	switch in.Op {
	case hlo.OpParameter, hlo.OpConstant, hlo.OpTuple:
		return 0
	case hlo.OpZero:
		// Accumulator initialization: buffer allocation, zero-filled
		// lazily by the first writer.
		return 0
	case hlo.OpDynamicUpdateSlice:
		// In-place region update: read the update, write the region.
		return s.MemoryTime(2 * in.Operands[1].ByteSize())
	case hlo.OpCollectivePermuteStart, hlo.OpCollectivePermuteDone:
		return 0 // wire time handled by the simulator
	case hlo.OpAllGather, hlo.OpReduceScatter, hlo.OpAllReduce, hlo.OpAllToAll, hlo.OpCollectivePermute:
		return s.OpOverhead
	case hlo.OpEinsum:
		flops, minDim := EinsumStats(in)
		bytes := in.ByteSize()
		for _, op := range in.Operands {
			bytes += op.ByteSize()
		}
		return s.EinsumTime(flops, bytes, minDim)
	case hlo.OpFusion:
		return s.fusionCost(in)
	case hlo.OpLoop:
		// A rolled loop occupies the device for its whole (serial)
		// execution: TripCount times the body's local and wire costs.
		var per float64
		for _, inner := range in.Body.Instructions() {
			per += s.InstructionCost(inner) + s.CollectiveTime(inner)
		}
		return float64(in.TripCount) * per
	case hlo.OpReshape:
		// Reshapes are free layout changes.
		return 0
	default:
		// Element-wise and data movement: read operands, write result.
		bytes := in.ByteSize()
		for _, op := range in.Operands {
			bytes += op.ByteSize()
		}
		return s.MemoryTime(bytes)
	}
}

// fusionCost prices a fused kernel: all inner einsum FLOPs against the
// matrix unit, but memory traffic only for the fusion's external inputs
// and output — the benefit fusion exists to provide. A fusion rooted in
// a DynamicUpdateSlice chain updates its output buffer in place: only
// the updated regions are written and the aliased base buffer is not
// re-read.
func (s Spec) fusionCost(in *hlo.Instruction) float64 {
	var flops int64
	minDim := 0
	var dusWrite int64
	aliasedBases := map[*hlo.Instruction]bool{}
	for _, inner := range in.Body.Instructions() {
		switch inner.Op {
		case hlo.OpEinsum:
			f, m := EinsumStats(inner)
			flops += f
			if minDim == 0 || m < minDim {
				minDim = m
			}
		case hlo.OpDynamicUpdateSlice:
			dusWrite += inner.Operands[1].ByteSize()
			aliasedBases[inner.Operands[0]] = true
		}
	}
	rootIsDUS := in.Body.Root().Op == hlo.OpDynamicUpdateSlice
	var bytes int64
	if rootIsDUS {
		bytes += dusWrite
	} else {
		bytes += in.ByteSize()
	}
	params := in.Body.Parameters()
	for i, op := range in.Operands {
		if rootIsDUS && i < len(params) && aliasedBases[params[i]] {
			continue // in-place alias of the output buffer
		}
		bytes += op.ByteSize()
	}
	if flops == 0 {
		return s.MemoryTime(bytes)
	}
	return s.EinsumTime(flops, bytes, minDim)
}

// EinsumStats returns the FLOP count and the effective matrix-unit
// tiling dimension of an einsum instruction: viewing the einsum as a
// (batched) M×K·K×N matmul — M the product of LHS-only output labels, N
// the product of RHS-only output labels, K the product of contracted
// labels — the efficiency-limiting dimension is min(M, N, K). Batch
// labels do not limit tiling.
func EinsumStats(in *hlo.Instruction) (flops int64, minDim int) {
	spec, err := tensor.ParseEinsum(in.EinsumSpec)
	if err != nil {
		panic(fmt.Sprintf("machine: einsum %s has invalid spec %q", in.Name, in.EinsumSpec))
	}
	flops, err = spec.Flops(in.Operands[0].Shape, in.Operands[1].Shape)
	if err != nil {
		panic(fmt.Sprintf("machine: einsum %s stats: %v", in.Name, err))
	}

	sizes := map[byte]int{}
	for side, labels := range spec.Inputs {
		for i := 0; i < len(labels); i++ {
			sizes[labels[i]] = in.Operands[side].Shape[i]
		}
	}
	contains := func(s string, c byte) bool {
		for i := 0; i < len(s); i++ {
			if s[i] == c {
				return true
			}
		}
		return false
	}
	m, n, k := 1, 1, 1
	for label, size := range sizes {
		inL := contains(spec.Inputs[0], label)
		inR := len(spec.Inputs) > 1 && contains(spec.Inputs[1], label)
		inOut := contains(spec.Output, label)
		switch {
		case !inOut:
			k *= size
		case inL && inR:
			// batch label: does not limit matrix-unit tiling
		case inL:
			m *= size
		default:
			n *= size
		}
	}
	minDim = m
	if n < minDim {
		minDim = n
	}
	if k < minDim {
		minDim = k
	}
	return flops, minDim
}
