package hlo

import (
	"strings"
	"testing"

	"overlap/internal/tensor"
)

// roundTrip asserts Format(Parse(Format(c))) == Format(c): the text form
// is a faithful exchange format.
func roundTrip(t *testing.T, c *Computation) *Computation {
	t.Helper()
	text := c.Format()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text)
	}
	if err := parsed.Verify(); err != nil {
		t.Fatalf("parsed computation invalid: %v\n%s", err, text)
	}
	again := parsed.Format()
	if again != text {
		t.Fatalf("round trip not stable.\n--- original ---\n%s\n--- reparsed ---\n%s", text, again)
	}
	return parsed
}

func TestParseRoundTripBasics(t *testing.T) {
	c := NewComputation("basics")
	a := c.Parameter(0, "a", []int{4, 6})
	b := c.Parameter(1, "b", []int{6, 5})
	k := c.Constant("k", tensor.Iota(4, 5))
	ein := c.Einsum("mk,kn->mn", a, b)
	sum := c.Add(ein, k)
	mx := c.Max(sum, k)
	cp := c.Copy(mx)
	rs := c.Reshape(cp, 5, 4)
	tr := c.Transpose(rs, 1, 0)
	cat := c.Concat(1, tr, tr)
	pd := c.Pad(cat, []int{1, 0}, []int{0, 2}, -1.5)
	sl := c.Slice(pd, []int{0, 0}, []int{4, 6})
	z := c.Zeros("z", []int{4, 6})
	c.Tuple(sl, z)
	roundTrip(t, c)
}

func TestParseRoundTripDynamicOps(t *testing.T) {
	c := NewComputation("dyn")
	a := c.Parameter(0, "a", []int{8, 8})
	ds := c.DynamicSlice(a,
		[]DynOffset{{PIDFactor: 1, Div: 2, IterFactor: 3, Add: 1, Mod: 4, Scale: 2}, Static(0)},
		[]int{2, 8})
	base := c.Zeros("base", []int{8, 8})
	c.DynamicUpdateSlice(base, ds, []DynOffset{{PIDFactor: 1, Div: 1, Add: 0, Mod: 4, Scale: 2}, Static(0)})
	parsed := roundTrip(t, c)
	// Offsets must evaluate identically after the round trip.
	var orig, re *Instruction
	for _, in := range c.Instructions() {
		if in.Op == OpDynamicSlice {
			orig = in
		}
	}
	for _, in := range parsed.Instructions() {
		if in.Op == OpDynamicSlice {
			re = in
		}
	}
	for pid := 0; pid < 8; pid++ {
		for iter := 0; iter < 4; iter++ {
			if orig.Offsets[0].EvalIter(pid, iter) != re.Offsets[0].EvalIter(pid, iter) {
				t.Fatalf("offset eval diverges at pid=%d iter=%d", pid, iter)
			}
		}
	}
}

func TestParseRoundTripCollectives(t *testing.T) {
	c := NewComputation("colls")
	a := c.Parameter(0, "a", []int{4, 8})
	groups := [][]int{{0, 1}, {2, 3}}
	ag := c.AllGather(a, 0, groups)
	rsIn := c.Einsum("mk,kn->mn", ag, c.Parameter(1, "b", []int{8, 8}))
	rs := c.ReduceScatter(rsIn, 0, groups)
	ar := c.AllReduce(rs, groups)
	a2a := c.AllToAll(ar, 0, 0, groups)
	pairs := []SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}}
	cp := c.CollectivePermute(a2a, pairs)
	start := c.CollectivePermuteStart(cp, pairs)
	c.CollectivePermuteDone(start)
	roundTrip(t, c)
}

func TestParseRoundTripFusionAndLoop(t *testing.T) {
	body := NewComputation("body")
	p0 := body.Parameter(0, "p0", []int{4})
	p1 := body.Parameter(1, "p1", []int{4})
	nxt := body.CollectivePermute(body.Copy(p0), []SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	acc := body.Add(p1, p0)
	body.Tuple(nxt, acc)

	fbody := NewComputation("fbody")
	f0 := fbody.Parameter(0, "f0", []int{4})
	fbody.Add(f0, f0)

	c := NewComputation("outer")
	x := c.Parameter(0, "x", []int{4})
	z := c.Zeros("z", []int{4})
	lp := c.Loop(body, 2, 1, x, z)
	c.Fusion("fuse", fbody, lp)
	roundTrip(t, c)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"nope",                                 // no header
		"c {\n  %a = f32[2] parameter()\n",     // unclosed
		"c {\n  %a = f32[2] warp(), x=1\n}",    // unknown opcode
		"c {\n  %a = f32[2] copy(%missing)\n}", // undefined operand
		"c {\n  garbage\n}",                    // unparseable line
	}
	for i, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("case %d parsed successfully: %q", i, text)
		}
	}
}

func TestParseRejectsTrailing(t *testing.T) {
	c := NewComputation("one")
	c.Parameter(0, "a", []int{2})
	text := c.Format() + "extra {\n}\n"
	if _, err := Parse(text); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing content accepted: %v", err)
	}
}

func TestParseConstantValues(t *testing.T) {
	c := NewComputation("konst")
	c.Constant("k", tensor.FromValues([]int{2, 2}, []float64{1.5, -2, 0, 42}))
	parsed := roundTrip(t, c)
	k := parsed.Find("k")
	if k == nil || k.Literal == nil {
		t.Fatal("constant literal lost")
	}
	want := []float64{1.5, -2, 0, 42}
	for i, v := range k.Literal.Data() {
		if v != want[i] {
			t.Fatalf("literal[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestParseSkipsLeadingComments(t *testing.T) {
	c := NewComputation("comments")
	c.Parameter(0, "a", []int{2})
	text := "// a report line\n// another\n\n" + c.Format()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumInstructions() != 1 {
		t.Fatalf("parsed %d instructions", parsed.NumInstructions())
	}
}
