package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Process-wide worker pool for intra-op kernel parallelism. A kernel
// partitions its *output* rows into one contiguous chunk per worker, so
// every element is accumulated by exactly one goroutine in the fixed
// ascending-K order — results are byte-identical for any worker count,
// which preserves the runtime-vs-interpreter bit-identical cross-check.

// maxKernelWorkers bounds the configurable parallelism; beyond this the
// chunking overhead dwarfs any win.
const maxKernelWorkers = 1024

// kernelWorkers holds the configured worker count; zero means "follow
// GOMAXPROCS".
var kernelWorkers atomic.Int32

// SetKernelWorkers sets the process-wide intra-op parallelism of the
// einsum kernel engine. n <= 0 restores the default (GOMAXPROCS at call
// time). The setting changes only how work is partitioned, never the
// result bytes.
func SetKernelWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n > maxKernelWorkers {
		n = maxKernelWorkers
	}
	kernelWorkers.Store(int32(n))
}

// KernelWorkers returns the effective intra-op worker count.
func KernelWorkers() int {
	if n := kernelWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// maxKernelSplitK bounds the configurable split factor; the tree
// combine costs (S-1)·M·N adds, so very large factors only add
// overhead.
const maxKernelSplitK = 64

// kernelSplitK holds the configured split-K factor; 0 or 1 means
// "rows only" (the default — results are then byte-identical to the
// scalar reference on every spec).
var kernelSplitK atomic.Int32

// SetKernelSplitK sets the kernel engine's split-K factor: skinny
// GEMMs (too few output rows to feed the worker pool) partition their
// contraction into n ranges reduced by a fixed-shape binary tree
// (see splitk.go). n <= 1 disables splitting. The factor is part of
// the planned kernel strategy — for a fixed factor, results are
// byte-identical across worker counts and runs, but different factors
// legitimately round differently (the tree reassociates the
// contraction), which is why the autotuner searches and pins it per
// program (core.Options.KernelSplitK) rather than a heuristic deriving
// it from the machine.
func SetKernelSplitK(n int) {
	if n < 0 {
		n = 0
	}
	if n > maxKernelSplitK {
		n = maxKernelSplitK
	}
	kernelSplitK.Store(int32(n))
}

// KernelSplitK returns the configured split-K factor (0 when off).
func KernelSplitK() int {
	n := kernelSplitK.Load()
	if n <= 1 {
		return 0
	}
	return int(n)
}

// SplitKInherit is the per-call split-K value meaning "use the
// process-wide factor" (SetKernelSplitK). Entry points that accept an
// explicit factor — EinsumSplitK, EinsumAddIntoSplitK — treat any
// non-negative value as an override, so a run that was planned with a
// specific factor (including an explicit 0 = off) is insulated from
// concurrent changes to the global.
const SplitKInherit = -1

// effectiveSplitK resolves a per-call split-K value to the factor the
// GEMM dispatcher uses: the ambient global for SplitKInherit, otherwise
// the clamped explicit value (0/1 = off).
func effectiveSplitK(splitK int) int {
	if splitK < 0 {
		return KernelSplitK()
	}
	if splitK <= 1 {
		return 0
	}
	if splitK > maxKernelSplitK {
		return maxKernelSplitK
	}
	return splitK
}

var (
	workerOnce sync.Once
	workQueue  chan func()
)

// submit hands one chunk to the pool, spilling to a fresh goroutine
// when every pooled worker is busy — concurrent device goroutines may
// request parallel kernels at once, and a kernel must never wait on a
// queue its peers are also filling.
func submit(f func()) {
	workerOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		workQueue = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for g := range workQueue {
					g()
				}
			}()
		}
	})
	select {
	case workQueue <- f:
	default:
		go f()
	}
}

// parallelRows runs fn over [0, rows) split into at most workers
// contiguous chunks. The caller's goroutine computes the first chunk
// while the pool computes the rest. The chunk boundaries depend only on
// (rows, workers); which goroutine runs a chunk never matters because
// chunks are disjoint.
func parallelRows(rows, workers int, fn func(lo, hi int)) {
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		lo, hi := lo, hi
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			fn(lo, hi)
		})
	}
	fn(0, chunk)
	wg.Wait()
}
