package machine

import (
	"math"
	"testing"
	"testing/quick"

	"overlap/internal/hlo"
)

func flat() Spec {
	return Spec{
		Name: "flat", PeakFLOPS: 1e12, MatmulEfficiency: 1, EfficiencyKnee: 0,
		HBMBandwidth: 1e12, LinkBandwidth: 1e9, LinkLatency: 1e-6,
		OpOverhead: 0, MaxInFlight: 4,
	}
}

func TestValidate(t *testing.T) {
	if err := TPUv4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TPUv4()
	bad.PeakFLOPS = 0
	if bad.Validate() == nil {
		t.Fatal("zero peak accepted")
	}
	bad = TPUv4()
	bad.MatmulEfficiency = 1.5
	if bad.Validate() == nil {
		t.Fatal("efficiency > 1 accepted")
	}
	bad = TPUv4()
	bad.MaxInFlight = 0
	if bad.Validate() == nil {
		t.Fatal("zero async budget accepted")
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.LinkBandwidth = -1 },
		func(s *Spec) { s.HBMBandwidth = 0 },
		func(s *Spec) { s.LinkLatency = -1e-9 },
		func(s *Spec) { s.OpOverhead = -1e-9 },
		func(s *Spec) { s.EfficiencyKnee = -1 },
		func(s *Spec) { s.PeakFLOPS = math.NaN() },
		func(s *Spec) { s.LinkLatency = math.Inf(1) },
		func(s *Spec) { s.MatmulEfficiency = math.NaN() },
	}
	for i, mutate := range mutations {
		bad = TPUv4()
		mutate(&bad)
		if bad.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a, b := TPUv4(), TPUv4()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs fingerprint differently")
	}
	b.LinkBandwidth *= 2
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("link bandwidth change not reflected in fingerprint")
	}
	if TPUv4().Fingerprint() == GPUCluster().Fingerprint() {
		t.Fatal("distinct specs share a fingerprint")
	}
}

func TestCalibrationApply(t *testing.T) {
	s := TPUv4()
	if got := Identity().Apply(s); got != s {
		t.Fatalf("identity calibration changed the spec: %+v", got)
	}

	// Doubling compute throughput halves einsum time; the efficiency
	// ceiling overflow must land in PeakFLOPS so the spec still
	// validates.
	cal := Calibration{ComputeScale: 4, WireScale: 2, OverheadScale: 0.5}
	got := cal.Apply(s)
	if err := got.Validate(); err != nil {
		t.Fatalf("calibrated spec invalid: %v", err)
	}
	wantThroughput := s.PeakFLOPS * s.MatmulEfficiency * 4
	if gotTp := got.PeakFLOPS * got.MatmulEfficiency; math.Abs(gotTp-wantThroughput)/wantThroughput > 1e-9 {
		t.Fatalf("compute throughput %v, want %v", gotTp, wantThroughput)
	}
	if got.MatmulEfficiency != 1 {
		t.Fatalf("efficiency %v, want saturated at 1", got.MatmulEfficiency)
	}
	if got.LinkBandwidth != s.LinkBandwidth*2 {
		t.Fatalf("link bandwidth %v, want doubled", got.LinkBandwidth)
	}
	if got.OpOverhead != s.OpOverhead*0.5 {
		t.Fatalf("op overhead %v, want halved", got.OpOverhead)
	}
	if got.HBMBandwidth != s.HBMBandwidth*4 {
		t.Fatalf("HBM bandwidth %v, want quadrupled", got.HBMBandwidth)
	}

	// Degenerate factors degrade to identity instead of corrupting.
	wild := Calibration{ComputeScale: math.NaN(), WireScale: -2, OverheadScale: 0}
	if got := wild.Apply(s); got != s {
		t.Fatalf("degenerate calibration changed the spec: %+v", got)
	}
}

func TestCalibrationSetters(t *testing.T) {
	s := TPUv4()
	if got := s.WithMatmulEfficiency(2); got.MatmulEfficiency != 1 {
		t.Fatalf("efficiency not clamped to 1: %v", got.MatmulEfficiency)
	}
	if got := s.WithMatmulEfficiency(-1); got.Validate() != nil {
		t.Fatal("negative efficiency produced an invalid spec")
	}
	if got := s.WithLinkBandwidth(-5); got.Validate() != nil {
		t.Fatal("negative bandwidth produced an invalid spec")
	}
	if got := s.WithOpOverhead(-1); got.OpOverhead != 0 {
		t.Fatalf("negative overhead not clamped: %v", got.OpOverhead)
	}
}

func TestEinsumEfficiencyCurve(t *testing.T) {
	s := TPUv4()
	if got := s.EinsumEfficiency(1 << 20); got < 0.85*s.MatmulEfficiency {
		t.Fatalf("large einsum efficiency = %v, want near %v", got, s.MatmulEfficiency)
	}
	small := s.EinsumEfficiency(32)
	large := s.EinsumEfficiency(4096)
	if small >= large {
		t.Fatalf("efficiency not monotone: eff(32)=%v >= eff(4096)=%v", small, large)
	}
	if got := s.EinsumEfficiency(0); got != s.MatmulEfficiency {
		t.Fatalf("unknown minDim must use asymptotic efficiency, got %v", got)
	}
}

func TestEinsumTimeRoofline(t *testing.T) {
	s := flat()
	// Compute bound: 2e9 FLOPs at 1e12 → 2ms; 1KB of memory is free.
	if got := s.EinsumTime(2e9, 1024, 0); math.Abs(got-2e-3) > 1e-12 {
		t.Fatalf("compute-bound time = %v", got)
	}
	// Memory bound: tiny FLOPs, 1e9 bytes at 1e12 B/s → 1ms.
	if got := s.EinsumTime(10, 1e9, 0); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("memory-bound time = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	s := flat()
	if got := s.TransferTime(1e9, 1); math.Abs(got-(1+1e-6)) > 1e-12 {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := s.TransferTime(0, 3); math.Abs(got-3e-6) > 1e-15 {
		t.Fatalf("latency-only TransferTime = %v", got)
	}
	// Zero hops clamps to one.
	if got := s.TransferTime(0, 0); got != s.TransferTime(0, 1) {
		t.Fatal("hop clamping broken")
	}
}

func TestRingCollectiveTimes(t *testing.T) {
	s := flat()
	s.LinkLatency = 0
	full := int64(8e9)
	// AllGather over 4 devices: receive 3/4 of the result over two
	// directions → 6e9/2e9... careful: 8e9 * 3/4 / (2*1e9) = 3s.
	if got := s.RingAllGatherTime(full, 4); math.Abs(got-3) > 1e-9 {
		t.Fatalf("RingAllGatherTime = %v, want 3", got)
	}
	if got := s.RingReduceScatterTime(full, 4); math.Abs(got-3) > 1e-9 {
		t.Fatalf("RingReduceScatterTime = %v, want 3", got)
	}
	if got := s.RingAllReduceTime(full, 4); math.Abs(got-6) > 1e-9 {
		t.Fatalf("RingAllReduceTime = %v, want 6", got)
	}
	// Degenerate single-device groups are free.
	if s.RingAllGatherTime(full, 1) != 0 || s.RingAllReduceTime(full, 1) != 0 {
		t.Fatal("single-device collectives must be free")
	}
	// AllToAll grows with group size at fixed bytes.
	if s.AllToAllTime(full, 8) <= s.AllToAllTime(full, 4) {
		t.Fatal("AllToAll cost must grow with ring size")
	}
}

func TestInstructionCostDispatch(t *testing.T) {
	s := flat()
	c := hlo.NewComputation("cost")
	a := c.Parameter(0, "a", []int{512, 512})
	b := c.Parameter(1, "b", []int{512, 512})
	ein := c.Einsum("ik,kj->ij", a, b)
	add := c.Add(ein, ein)
	ag := c.AllGather(add, 0, [][]int{{0, 1}})
	start := c.CollectivePermuteStart(add, []hlo.SourceTargetPair{{Source: 0, Target: 1}, {Source: 1, Target: 0}})
	done := c.CollectivePermuteDone(start)
	_ = done

	if got := s.InstructionCost(a); got != 0 {
		t.Fatalf("parameter cost = %v", got)
	}
	einWant := 2.0 * 512 * 512 * 512 / 1e12
	if got := s.InstructionCost(ein); math.Abs(got-einWant)/einWant > 1e-9 {
		t.Fatalf("einsum cost = %v, want %v", got, einWant)
	}
	addWant := 3.0 * 512 * 512 * 4 / 1e12 // two reads + one write
	if got := s.InstructionCost(add); math.Abs(got-addWant)/addWant > 1e-9 {
		t.Fatalf("add cost = %v, want %v", got, addWant)
	}
	if got := s.InstructionCost(start); got != 0 {
		t.Fatalf("async start cost = %v, want 0", got)
	}
	if got := s.InstructionCost(ag); got != s.OpOverhead {
		t.Fatalf("collective local cost = %v", got)
	}
	if got := s.CollectiveTime(ag); got <= 0 {
		t.Fatalf("collective wire time = %v", got)
	}
	if got := s.CollectiveTime(ein); got != 0 {
		t.Fatalf("einsum wire time = %v, want 0", got)
	}
}

func TestFusionCostCountsExternalBytesOnly(t *testing.T) {
	s := flat()
	s.HBMBandwidth = 1e9 // make memory dominant

	// Unfused: einsum + add, each paying memory traffic.
	c := hlo.NewComputation("unfused")
	a := c.Parameter(0, "a", []int{64, 64})
	b := c.Parameter(1, "b", []int{64, 64})
	ein := c.Einsum("ik,kj->ij", a, b)
	add := c.Add(ein, a)
	unfused := s.InstructionCost(ein) + s.InstructionCost(add)

	// Fused: one kernel, intermediate stays in registers.
	body := hlo.NewComputation("body")
	p0 := body.Parameter(0, "p0", []int{64, 64})
	p1 := body.Parameter(1, "p1", []int{64, 64})
	ein2 := body.Einsum("ik,kj->ij", p0, p1)
	body.Add(ein2, p0)
	c2 := hlo.NewComputation("fused")
	a2 := c2.Parameter(0, "a", []int{64, 64})
	b2 := c2.Parameter(1, "b", []int{64, 64})
	f := c2.Fusion("f", body, a2, b2)
	fused := s.InstructionCost(f)

	if fused >= unfused {
		t.Fatalf("fusion did not reduce cost: fused=%v unfused=%v", fused, unfused)
	}
}

func TestEinsumStats(t *testing.T) {
	c := hlo.NewComputation("stats")
	a := c.Parameter(0, "a", []int{8, 32})
	b := c.Parameter(1, "b", []int{32, 16})
	ein := c.Einsum("ik,kj->ij", a, b)
	flops, minDim := EinsumStats(ein)
	if flops != 2*8*32*16 {
		t.Fatalf("flops = %d", flops)
	}
	if minDim != 8 {
		t.Fatalf("minDim = %d, want 8", minDim)
	}
}

func TestGPUClusterSpec(t *testing.T) {
	g := GPUCluster()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	tpu := TPUv4()
	// The §7.2 premise: the GPU island has a lower FLOPS-to-link-
	// bandwidth ratio, so relatively less communication time to hide.
	if g.PeakFLOPS/g.LinkBandwidth >= tpu.PeakFLOPS/tpu.LinkBandwidth {
		t.Fatalf("GPU FLOPS/bandwidth ratio %.0f not below TPU %.0f",
			g.PeakFLOPS/g.LinkBandwidth, tpu.PeakFLOPS/tpu.LinkBandwidth)
	}
}

// Property: every cost function is monotone in its byte argument and
// collective times are monotone in group size at fixed per-device bytes.
func TestCostMonotonicity(t *testing.T) {
	s := TPUv4()
	f := func(a, b uint32) bool {
		x, y := int64(a)+1, int64(b)+1
		if x > y {
			x, y = y, x
		}
		if s.TransferTime(x, 1) > s.TransferTime(y, 1) {
			return false
		}
		if s.MemoryTime(x) > s.MemoryTime(y) {
			return false
		}
		if s.RingAllGatherTime(x, 8) > s.RingAllGatherTime(y, 8) {
			return false
		}
		if s.RingReduceScatterTime(x, 8) > s.RingReduceScatterTime(y, 8) {
			return false
		}
		return s.EinsumTime(int64(a), x, 512) <= s.EinsumTime(int64(a)+int64(b), y, 512)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Larger rings take longer at the same total payload.
	for g := 2; g < 64; g *= 2 {
		if s.RingAllGatherTime(1<<20, g) > s.RingAllGatherTime(1<<20, g*2) {
			t.Fatalf("all-gather time not monotone in ring size at g=%d", g)
		}
	}
}
