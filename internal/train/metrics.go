package train

import "overlap/internal/obs"

// Training-step telemetry, resolved once against the process-wide
// registry like the runtime's own handles. The executor updates them
// per step; exporters and the live /metrics endpoint pick them up with
// every other overlap_* family.
var (
	trSteps = obs.Default().Counter("overlap_train_steps_total",
		"Training steps executed on the goroutine runtime.")
	trChecks = obs.Default().Counter("overlap_train_checks_total",
		"Training steps cross-checked bitwise against the lockstep interpreter.")
	trLoss = obs.Default().Gauge("overlap_train_loss",
		"Global loss (summed over devices) of the most recent training step.")
	trStepSeconds = obs.Default().Histogram("overlap_train_step_seconds",
		"Wall-clock duration of training steps on the runtime.", obs.TimeBuckets())
	trGradBuckets = obs.Default().Gauge("overlap_train_grad_buckets",
		"Gradient buckets the bucketing pass formed for the current program.")
	trGradBucketBytes = obs.Default().Gauge("overlap_train_grad_bucket_bytes",
		"Configured gradient bucket-size bound in bytes (0 = bucketing off).")
	trGradWireSeconds = obs.Default().Gauge("overlap_train_grad_wire_seconds",
		"Total collective wire seconds of the last attributed training step.")
	trGradHiddenSeconds = obs.Default().Gauge("overlap_train_grad_hidden_seconds",
		"Wire seconds of the last attributed training step hidden under backward compute.")
)
