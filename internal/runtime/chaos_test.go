package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"overlap/internal/core"
	"overlap/internal/hlo"
	"overlap/internal/machine"
	"overlap/internal/models"
	"overlap/internal/runtime"
	"overlap/internal/sim"
	"overlap/internal/tensor"
)

// chaosModel is one miniature workload prepared for the soak: the
// decomposed program, its arguments, the interpreter's reference
// outputs, the directed fabric edges with their delivery counts, and
// the per-device instruction count — everything a randomized fault
// needs to stay within range so it is guaranteed to fire.
type chaosModel struct {
	name    string
	comp    *hlo.Computation
	args    [][]*tensor.Tensor
	ref     []*tensor.Tensor
	edges   [][2]int
	parcels map[[2]int]int
	instrs  int
	n       int
}

func buildChaosModels(t *testing.T, n int) []*chaosModel {
	t.Helper()
	spec := machine.TPUv4()
	var out []*chaosModel
	for _, name := range []string{"GPT_32B", "GPT_128B", "GLaM_1T"} {
		cfg, err := models.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mini, err := models.Miniature(cfg, n, 2)
		if err != nil {
			t.Fatalf("%s miniature: %v", name, err)
		}
		c, err := models.BuildLayerStep(mini)
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		opts := core.DefaultOptions(spec)
		opts.UseCostModel = false // miniature shapes would not pass the full-size gate
		if _, err := core.Apply(c, opts); err != nil {
			t.Fatalf("%s apply: %v", name, err)
		}

		rng := rand.New(rand.NewSource(42))
		params := c.Parameters()
		args := make([][]*tensor.Tensor, len(params))
		for i, p := range params {
			args[i] = []*tensor.Tensor{tensor.Rand(rng, p.Shape...)}
		}
		ref, err := sim.Interpret(c, n, args)
		if err != nil {
			t.Fatalf("%s interpret: %v", name, err)
		}

		m := &chaosModel{name: name, comp: c, args: args, ref: ref, parcels: map[[2]int]int{}, n: n}
		countStarts := func(in *hlo.Instruction, mult int) {
			if in.Op != hlo.OpCollectivePermuteStart {
				return
			}
			for _, p := range in.Pairs {
				edge := [2]int{p.Source, p.Target}
				if m.parcels[edge] == 0 {
					m.edges = append(m.edges, edge)
				}
				m.parcels[edge] += mult
			}
		}
		for _, in := range c.Instructions() {
			m.instrs++
			if in.Op == hlo.OpLoop {
				m.instrs += in.TripCount * len(in.Body.Instructions())
				for _, bin := range in.Body.Instructions() {
					countStarts(bin, in.TripCount)
				}
				continue
			}
			countStarts(in, 1)
		}
		if len(m.edges) == 0 {
			t.Fatalf("%s: decomposed program has no async edges to fault", name)
		}
		out = append(out, m)
	}
	return out
}

// TestChaosSoak drives the runtime through randomized, seeded fault
// scenarios across three miniature models and asserts the graceful-
// failure contract on every one of them: the run terminates within its
// deadline, the error is a *RunError attributing the injected fault to
// the right device and phase, no goroutines leak, and a fault-free run
// of the same program stays bit-identical to the interpreter — never a
// deadlock, never a wrong answer. Scenario generation is deterministic
// per index, so a failure reproduces from its seed.
func TestChaosSoak(t *testing.T) {
	const n = 4
	scenarios := 200
	if testing.Short() {
		scenarios = 24
	}
	// The stall deadline bounds drop/delay scenarios, which must wait it
	// out; immediate faults (crash, dup) get a generous tripwire.
	const stallDeadline = 150 * time.Millisecond
	const hardDeadline = 10 * time.Second

	baseline := goruntime.NumGoroutine()
	mods := buildChaosModels(t, n)

	// Fault-free control: each model's concurrent execution must stay
	// bit-identical to the interpreter, on both transports.
	for _, m := range mods {
		for _, tr := range []runtime.TransportKind{runtime.TransportChan, runtime.TransportProc} {
			res, err := runtime.Run(m.comp, m.n, m.args, runtime.Options{Transport: tr})
			if err != nil {
				t.Fatalf("%s fault-free (%s): %v", m.name, tr, err)
			}
			for d := range m.ref {
				if !res.Values[d].Equal(m.ref[d]) {
					t.Fatalf("%s fault-free (%s): device %d diverges from the interpreter", m.name, tr, d)
				}
			}
		}
	}

	kinds := []runtime.FaultKind{runtime.FaultCrash, runtime.FaultDrop, runtime.FaultDuplicate, runtime.FaultDelay}
	for i := 0; i < scenarios; i++ {
		i := i
		m := mods[i%len(mods)]
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		kind := kinds[rng.Intn(len(kinds))]

		var fault runtime.Fault
		deadline := hardDeadline
		switch kind {
		case runtime.FaultCrash:
			fault = runtime.Fault{Kind: kind, Device: rng.Intn(n), K: rng.Intn(m.instrs)}
		case runtime.FaultDrop, runtime.FaultDuplicate:
			edge := m.edges[rng.Intn(len(m.edges))]
			fault = runtime.Fault{Kind: kind, Src: edge[0], Dst: edge[1], K: rng.Intn(m.parcels[edge])}
			if kind == runtime.FaultDrop {
				deadline = stallDeadline
			}
		case runtime.FaultDelay:
			edge := m.edges[rng.Intn(len(m.edges))]
			fault = runtime.Fault{
				Kind: kind, Src: edge[0], Dst: edge[1], K: -1,
				Delay:  5 * time.Second, // far beyond the deadline: guaranteed stall
				Jitter: time.Duration(rng.Intn(100)) * time.Millisecond,
			}
			deadline = stallDeadline
		}

		// Every 8th scenario exercises the process transport, so the
		// soak's graceful-failure contract is pinned on real sockets
		// too without multiplying its wall-clock by process spawns.
		transport := runtime.TransportChan
		if i%8 == 0 {
			transport = runtime.TransportProc
		}

		t.Run(fmt.Sprintf("%03d-%s-%s-%s", i, m.name, kind, transport), func(t *testing.T) {
			plan := &runtime.FaultPlan{Seed: int64(i), Faults: []runtime.Fault{fault}}
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()

			t0 := time.Now()
			res, err := runtime.RunContext(ctx, m.comp, m.n, m.args, runtime.Options{Faults: plan, Transport: transport})
			elapsed := time.Since(t0)

			if err == nil {
				t.Fatalf("injected %s but the run succeeded (%v)", fault, res.Breakdown)
			}
			if elapsed > deadline+3*time.Second {
				t.Fatalf("run took %s to unwind, deadline was %s", elapsed, deadline)
			}
			var re *runtime.RunError
			if !errors.As(err, &re) {
				t.Fatalf("error %v is not a *RunError", err)
			}
			if re.Fault != fault.String() {
				t.Fatalf("error %v does not carry the injected fault %q", re, fault)
			}
			switch kind {
			case runtime.FaultCrash:
				if !errors.Is(err, runtime.ErrInjectedCrash) {
					t.Fatalf("crash scenario returned %v", err)
				}
				if re.Device != fault.Device || re.Phase != runtime.PhaseCompute {
					t.Fatalf("crash attributed to device %d phase %s, want device %d phase compute", re.Device, re.Phase, fault.Device)
				}
			case runtime.FaultDuplicate:
				if !errors.Is(err, runtime.ErrDuplicateDelivery) {
					t.Fatalf("dup scenario returned %v", err)
				}
				if re.Device != fault.Dst || re.Phase != runtime.PhaseReceive {
					t.Fatalf("dup attributed to device %d phase %s, want device %d phase receive", re.Device, re.Phase, fault.Dst)
				}
			case runtime.FaultDrop, runtime.FaultDelay:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("stall scenario returned %v, want deadline", err)
				}
				if re.Device != fault.Dst || re.Phase != runtime.PhaseReceive {
					t.Fatalf("stall attributed to device %d phase %s, want device %d phase receive", re.Device, re.Phase, fault.Dst)
				}
			}
		})
	}

	// Every Run returns only after its device and link goroutines have
	// joined; the process-level count must come back to the baseline
	// (with slack for runtime bookkeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if goruntime.NumGoroutine() <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after the soak", baseline, goruntime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
